// Minimal data-parallel loop over a persistent worker pool.
//
// Two classes of caller share it: SimSession fans coarse experiment cells
// (seconds each) out across workers, and the numeric kernels
// (matmul / BatchGraphView aggregation) row-parallelise per-batch work
// (tens of microseconds each). The second class is why the pool is
// persistent — spawning threads per GEMM would cost more than the GEMM.
//
// Guarantees:
//  - fn(i) is invoked exactly once per i in [0, count); workers self-schedule
//    off a shared atomic index, so cross-worker ordering is unspecified and
//    callers index into pre-sized output slots.
//  - Calls from inside a pool worker run serially on the calling thread
//    (no nested fan-out): an experiment cell running on the session pool
//    computes its kernels inline instead of oversubscribing the machine.
//  - If any invocation throws, unstarted items are skipped (fail fast) and
//    the first exception is rethrown on the calling thread after the loop
//    drains.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

namespace fare {

/// Resolve a thread-count request: `requested` > 0 is taken literally;
/// 0 means "auto" — the FARE_THREADS environment variable if set, otherwise
/// std::thread::hardware_concurrency() floored at 2 workers.
std::size_t resolve_threads(std::size_t requested);

/// Invoke fn(i) for every i in [0, count) across up to `threads` workers
/// (0 = auto). threads <= 1, nested calls, and count <= 1 degenerate to a
/// plain serial loop on the calling thread.
void parallel_for_each(std::size_t threads, std::size_t count,
                       const std::function<void(std::size_t)>& fn);

/// Work (in fused multiply-adds) below which a numeric kernel stays serial:
/// threading overhead outweighs the win. Shared by the GEMMs and the graph
/// aggregation so the tune lives in one place.
inline constexpr std::size_t kKernelParallelGrain = std::size_t{1} << 18;

/// Run `rows_fn(i0, i1)` over [0, rows): serial when `work` (multiply-adds)
/// is under kKernelParallelGrain or there are fewer than two chunks,
/// otherwise in `chunk`-row blocks across the pool. Chunking is independent
/// of the worker count and each chunk is computed exactly as in a serial
/// sweep, so results are bit-identical for any thread count (each output row
/// has exactly one writer).
template <typename RowsFn>
void parallel_row_blocks(std::size_t rows, std::size_t work, std::size_t chunk,
                         const RowsFn& rows_fn) {
    if (work < kKernelParallelGrain || rows < 2 * chunk) {
        rows_fn(std::size_t{0}, rows);
        return;
    }
    const std::size_t chunks = (rows + chunk - 1) / chunk;
    parallel_for_each(0, chunks, [&](std::size_t c) {
        const std::size_t i0 = c * chunk;
        rows_fn(i0, std::min(rows, i0 + chunk));
    });
}

/// RAII cap on parallel_for_each's width for the current thread: inside the
/// scope every call uses at most `max_threads` workers (1 = force serial).
/// Scopes only ever tighten an enclosing cap — in particular they cannot
/// widen the serial guard inside a pool work item. Lets the determinism
/// tests compare a forced-serial run against the pool bit for bit, and
/// benchmarks pin the serial baseline.
class ParallelWidthScope {
public:
    explicit ParallelWidthScope(std::size_t max_threads);
    ~ParallelWidthScope();
    ParallelWidthScope(const ParallelWidthScope&) = delete;
    ParallelWidthScope& operator=(const ParallelWidthScope&) = delete;

private:
    std::size_t previous_;
};

}  // namespace fare
