// Minimal data-parallel loop used by SimSession to fan experiment cells out
// across a worker pool. Deliberately tiny: an atomic work index over a fixed
// range, no task queue, no futures — cells are coarse-grained (seconds each)
// so dynamic self-scheduling over an index is both simplest and optimal.
#pragma once

#include <cstddef>
#include <functional>

namespace fare {

/// Resolve a thread-count request: `requested` > 0 is taken literally;
/// 0 means "auto" — the FARE_THREADS environment variable if set, otherwise
/// std::thread::hardware_concurrency() floored at 2 workers.
std::size_t resolve_threads(std::size_t requested);

/// Invoke fn(i) for every i in [0, count) across up to `threads` workers.
/// Workers self-schedule off a shared atomic index, so per-item order across
/// workers is unspecified — callers index into pre-sized output slots.
/// If any invocation throws, unstarted items are skipped (fail fast) and the
/// first exception is rethrown on the calling thread after all workers join.
/// threads <= 1 degenerates to a plain loop.
void parallel_for_each(std::size_t threads, std::size_t count,
                       const std::function<void(std::size_t)>& fn);

}  // namespace fare
