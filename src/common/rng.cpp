#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fare {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    // SplitMix64 expansion guarantees a non-zero state even for seed == 0.
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    FARE_CHECK(bound > 0, "next_below bound must be positive");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
}

double Rng::next_gaussian() {
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= 1e-300);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

std::uint64_t Rng::next_poisson(double mean) {
    FARE_CHECK(mean >= 0.0, "Poisson mean must be non-negative");
    if (mean == 0.0) return 0;
    if (mean < 30.0) {
        // Knuth multiplication.
        const double limit = std::exp(-mean);
        double prod = next_double();
        std::uint64_t n = 0;
        while (prod > limit) {
            ++n;
            prod *= next_double();
        }
        return n;
    }
    // Normal approximation with continuity correction is adequate for the
    // large-mean regime used by the fault model (mean = density * cells).
    double draw = 0.0;
    do {
        draw = mean + std::sqrt(mean) * next_gaussian() + 0.5;
    } while (draw < 0.0);
    return static_cast<std::uint64_t>(draw);
}

double Rng::next_gamma(double shape, double scale) {
    FARE_CHECK(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
    if (shape < 1.0) {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        const double u = std::max(next_double(), 1e-300);
        return next_gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia–Tsang.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = 0.0, v = 0.0;
        do {
            x = next_gaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = next_double();
        if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
        if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v * scale;
    }
}

bool Rng::next_bool(double p) {
    return next_double() < p;
}

Rng Rng::fork() {
    return Rng(next_u64());
}

}  // namespace fare
