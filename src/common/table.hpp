// Plain-text / CSV table writer used by the benchmark harness to print the
// same rows and series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fare {

/// Accumulates rows of string cells and renders them either as an aligned
/// ASCII table (for terminals / bench_output.txt) or CSV (for re-plotting).
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append one row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    std::size_t num_rows() const { return rows_.size(); }

    /// Render with column alignment and a header separator.
    std::string to_ascii() const;

    /// Render as RFC-4180 CSV (cells containing commas/quotes are quoted).
    std::string to_csv() const;

    void print(std::ostream& os) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 3 decimal places).
std::string fmt(double v, int precision = 3);

/// Shortest round-trip representation of a double (%.17g), locale-free —
/// used for canonical cell keys and JSON serialization.
std::string fmt_exact(double v);

/// Format a fraction as a percentage string, e.g. 0.05 -> "5.0%".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace fare
