// Deterministic random number generation for reproducible experiments.
//
// All stochastic components (graph generators, fault injection, weight init,
// batch shuffling) draw from an explicitly seeded Rng so every figure in
// EXPERIMENTS.md regenerates bit-identically.
#pragma once

#include <cstdint>
#include <vector>

namespace fare {

/// xoshiro256** PRNG (Blackman & Vigna) seeded via SplitMix64.
///
/// Chosen over std::mt19937_64 because its stream is identical across
/// standard-library implementations, which keeps experiment outputs stable
/// across toolchains, and it is measurably faster for the fault-injection
/// inner loops.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Raw 64 random bits.
    std::uint64_t next_u64();

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform float in [lo, hi).
    float uniform(float lo, float hi);

    /// Standard normal via Box–Muller (cached second variate).
    double next_gaussian();

    /// Poisson-distributed count with the given mean.
    /// Uses Knuth multiplication for small means and the PTRS transformed
    /// rejection method for large means.
    std::uint64_t next_poisson(double mean);

    /// Gamma(shape, scale) via Marsaglia–Tsang squeeze (with the boost for
    /// shape < 1). Used by the clustered fault model's Gamma–Poisson mixture.
    double next_gamma(double shape, double scale);

    /// Bernoulli trial with probability p of true.
    bool next_bool(double p);

    /// Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(next_below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /// Derive an independent child stream (e.g. one per crossbar/partition).
    Rng fork();

private:
    std::uint64_t s_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

}  // namespace fare
