// Linear Deterministic Greedy (LDG) streaming partitioners.
//
// Single pass over nodes in random order: each node joins the part holding
// most of its already-placed neighbours, discounted by the part's fill level.
// Two variants:
//
//   partition_ldg           unit node weights, hard streaming_capacity cap
//   partition_ldg_weighted  w(v) = degree(v) + 1, capacity on total weight
//
// The unit variant enforces the cap strictly: parts at capacity are skipped,
// and because streaming_capacity(n, k) * k >= n a node can always be placed.
// (The original implementation only discounted full parts multiplicatively,
// so when k did not divide n the last part could blow past the (1 + eps)
// bound — the penalty term goes negative but an overfull part could still
// win the argmax.) The weighted variant can be forced past its weight cap
// only when a single heavy node fits nowhere; it then joins the lightest
// part, bounding part weight by capacity + max node weight.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/partitioner.hpp"

namespace fare {

Partitioning partition_ldg(const CSRGraph& g, int k, std::uint64_t seed) {
    FARE_CHECK(k >= 1, "k must be >= 1");
    FARE_CHECK(g.num_nodes() >= static_cast<NodeId>(k), "fewer nodes than parts");
    Partitioning result;
    result.k = k;
    result.assignment.assign(g.num_nodes(), 0);
    if (k == 1) return result;

    Rng rng(seed);
    const std::size_t capacity = streaming_capacity(g.num_nodes(), k);
    std::vector<std::size_t> load(static_cast<std::size_t>(k), 0);
    std::vector<int> assigned(g.num_nodes(), -1);
    std::vector<NodeId> order(g.num_nodes());
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);

    const double cap = static_cast<double>(capacity);
    std::vector<double> score(static_cast<std::size_t>(k));
    for (NodeId v : order) {
        std::fill(score.begin(), score.end(), 0.0);
        for (NodeId u : g.neighbors(v))
            if (assigned[u] >= 0) score[static_cast<std::size_t>(assigned[u])] += 1.0;
        int best = -1;
        double best_score = 0.0;
        for (int p = 0; p < k; ++p) {
            const std::size_t l = load[static_cast<std::size_t>(p)];
            if (l >= capacity) continue;  // hard cap: full parts are out
            const double penalty = 1.0 - static_cast<double>(l) / cap;
            const double s = (score[static_cast<std::size_t>(p)] + 1e-9) * penalty;
            if (best < 0 || s > best_score) {
                best_score = s;
                best = p;
            }
        }
        FARE_ASSERT(best >= 0);  // capacity * k >= n guarantees a slot
        assigned[v] = best;
        ++load[static_cast<std::size_t>(best)];
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) result.assignment[v] = assigned[v];
    return result;
}

Partitioning partition_ldg_weighted(const CSRGraph& g, int k, std::uint64_t seed) {
    FARE_CHECK(k >= 1, "k must be >= 1");
    FARE_CHECK(g.num_nodes() >= static_cast<NodeId>(k), "fewer nodes than parts");
    Partitioning result;
    result.k = k;
    result.assignment.assign(g.num_nodes(), 0);
    if (k == 1) return result;

    Rng rng(seed);
    // w(v) = degree(v) + 1: per-part weight tracks the adjacency rows a part
    // contributes to each mini-batch, which is what the crossbar pool pays.
    const double total_weight =
        static_cast<double>(g.num_arcs()) + static_cast<double>(g.num_nodes());
    const double capacity =
        std::ceil(1.1 * total_weight / static_cast<double>(k));
    std::vector<double> load(static_cast<std::size_t>(k), 0.0);
    std::vector<int> assigned(g.num_nodes(), -1);
    std::vector<NodeId> order(g.num_nodes());
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);

    std::vector<double> score(static_cast<std::size_t>(k));
    for (NodeId v : order) {
        const double w = static_cast<double>(g.degree(v)) + 1.0;
        std::fill(score.begin(), score.end(), 0.0);
        for (NodeId u : g.neighbors(v))
            if (assigned[u] >= 0) score[static_cast<std::size_t>(assigned[u])] += 1.0;
        int best = -1;
        double best_score = 0.0;
        for (int p = 0; p < k; ++p) {
            const double l = load[static_cast<std::size_t>(p)];
            if (l + w > capacity) continue;  // would overflow the weight cap
            const double penalty = 1.0 - l / capacity;
            const double s = (score[static_cast<std::size_t>(p)] + 1e-9) * penalty;
            if (best < 0 || s > best_score) {
                best_score = s;
                best = p;
            }
        }
        if (best < 0) {
            // A heavy node fits nowhere: take the lightest part. Part weight
            // is then bounded by capacity + max node weight.
            best = 0;
            for (int p = 1; p < k; ++p)
                if (load[static_cast<std::size_t>(p)] <
                    load[static_cast<std::size_t>(best)])
                    best = p;
        }
        assigned[v] = best;
        load[static_cast<std::size_t>(best)] += w;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) result.assignment[v] = assigned[v];
    return result;
}

}  // namespace fare
