// Linear Deterministic Greedy (LDG) streaming partitioner.
//
// Single pass over nodes in random order: each node joins the part holding
// most of its already-placed neighbours, discounted by the part's fill level.
// Serves as a fast alternative to the multilevel partitioner and as the
// quality baseline the partitioner tests compare against.
#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/partitioner.hpp"

namespace fare {

Partitioning partition_ldg(const CSRGraph& g, int k, std::uint64_t seed) {
    FARE_CHECK(k >= 1, "k must be >= 1");
    FARE_CHECK(g.num_nodes() >= static_cast<NodeId>(k), "fewer nodes than parts");
    Partitioning result;
    result.k = k;
    result.assignment.assign(g.num_nodes(), 0);
    if (k == 1) return result;

    Rng rng(seed);
    const double capacity =
        1.1 * static_cast<double>(g.num_nodes()) / static_cast<double>(k);
    std::vector<double> load(static_cast<std::size_t>(k), 0.0);
    std::vector<int> assigned(g.num_nodes(), -1);
    std::vector<NodeId> order(g.num_nodes());
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);

    std::vector<double> score(static_cast<std::size_t>(k));
    for (NodeId v : order) {
        std::fill(score.begin(), score.end(), 0.0);
        for (NodeId u : g.neighbors(v))
            if (assigned[u] >= 0) score[static_cast<std::size_t>(assigned[u])] += 1.0;
        int best = 0;
        double best_score = -1.0;
        for (int p = 0; p < k; ++p) {
            const double penalty = 1.0 - load[static_cast<std::size_t>(p)] / capacity;
            const double s = (score[static_cast<std::size_t>(p)] + 1e-9) * penalty;
            if (s > best_score) {
                best_score = s;
                best = p;
            }
        }
        assigned[v] = best;
        load[static_cast<std::size_t>(best)] += 1.0;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) result.assignment[v] = assigned[v];
    return result;
}

}  // namespace fare
