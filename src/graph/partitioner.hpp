// Multilevel k-way graph partitioner — the repo's METIS stand-in.
//
// The paper partitions each dataset with METIS [17] to form Cluster-GCN-style
// mini-batches (Table II: 250-15,000 partitions). We reproduce METIS's
// algorithmic skeleton from scratch:
//
//   1. coarsening by heavy-edge matching until the graph is small,
//   2. initial partitioning by greedy region growing on the coarsest graph,
//   3. uncoarsening with boundary FM refinement at every level.
//
// Quality target: locality-preserving balanced clusters, which is all the
// mini-batch pipeline needs (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace fare {

struct PartitionConfig {
    /// Allowed imbalance: max part weight <= (1 + epsilon) * ideal.
    double epsilon = 0.10;
    /// Stop coarsening when the graph has at most max(k * coarsen_factor,
    /// coarsen_floor) nodes.
    int coarsen_factor = 8;
    int coarsen_floor = 128;
    /// FM refinement passes per level.
    int refine_passes = 4;
    std::uint64_t seed = 1;
};

/// Result of a k-way partition.
struct Partitioning {
    int k = 0;
    std::vector<int> assignment;  ///< node -> part in [0, k)

    /// Undirected edges whose endpoints lie in different parts.
    std::size_t edge_cut(const CSRGraph& g) const;
    /// Max part size divided by ideal part size (1.0 = perfectly balanced).
    double balance(const CSRGraph& g) const;
    /// Nodes in each part.
    std::vector<std::vector<NodeId>> part_members() const;
};

/// Multilevel k-way partition (METIS-style).
Partitioning partition_multilevel(const CSRGraph& g, int k,
                                  const PartitionConfig& cfg = {});

/// Single-pass streaming partitioner (Linear Deterministic Greedy).
/// Provided as a fast alternative and as a quality baseline in tests.
Partitioning partition_ldg(const CSRGraph& g, int k, std::uint64_t seed = 1);

}  // namespace fare
