// k-way graph partitioning — the repo's METIS stand-in plus a family of
// streaming partitioners behind a common registry-named interface.
//
// The paper partitions each dataset with METIS [17] to form Cluster-GCN-style
// mini-batches (Table II: 250-15,000 partitions). We reproduce METIS's
// algorithmic skeleton from scratch (multilevel coarsening / region-growing /
// FM refinement) and add the single-pass streaming family used by web-scale
// systems where the graph no longer fits a multilevel workflow:
//
//   multilevel    heavy-edge matching + greedy growing + boundary FM
//   ldg           Linear Deterministic Greedy (hard capacity cap)
//   weighted-ldg  LDG over degree+1 node weights (balances adjacency load)
//   fennel        streaming with the Fennel interpolated objective
//   refennel      Fennel plus re-streaming passes, best cut kept
//
// Every algorithm is reachable two ways: the free functions below, or the
// polymorphic `Partitioner` registry (find_partitioner("fennel")), which is
// what the sweep stack uses so partitioning strategy can be swept like any
// other knob. A `PartitionQuality` report (edge-cut rate, alpha/beta balance,
// replication factor) is computed once per partitioning and carried into
// CellResult serialization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "graph/csr_graph.hpp"

namespace fare {

struct PartitionConfig {
    /// Allowed imbalance: max part weight <= (1 + epsilon) * ideal.
    double epsilon = 0.10;
    /// Stop coarsening when the graph has at most max(k * coarsen_factor,
    /// coarsen_floor) nodes.
    int coarsen_factor = 8;
    int coarsen_floor = 128;
    /// FM refinement passes per level.
    int refine_passes = 4;
    std::uint64_t seed = 1;
};

/// Result of a k-way partition.
struct Partitioning {
    int k = 0;
    std::vector<int> assignment;  ///< node -> part in [0, k)

    /// Undirected edges whose endpoints lie in different parts.
    std::size_t edge_cut(const CSRGraph& g) const;
    /// Max part size divided by ideal part size (1.0 = perfectly balanced).
    double balance(const CSRGraph& g) const;
    /// Nodes in each part.
    std::vector<std::vector<NodeId>> part_members() const;
};

/// Quality report for one partitioning, computed once and carried through
/// CellResult serialization (schema v4) so sweeps can compare partitioners.
struct PartitionQuality {
    std::string algo;  ///< registry name of the algorithm that produced it
    int parts = 0;
    std::size_t edge_cut = 0;  ///< undirected edges crossing parts
    /// edge_cut / num_edges; 0 on edgeless graphs.
    double edge_cut_rate = 0.0;
    /// Edge-balance factor: heaviest part's arc load * k / total arcs
    /// (1.0 = perfectly balanced adjacency work; 1.0 on edgeless graphs).
    double alpha = 0.0;
    /// Vertex-balance factor: largest part * k / n (the classic balance).
    double beta = 0.0;
    /// Mean number of distinct parts over each vertex's closed neighbourhood
    /// — the vertex-replication cost a distributed engine would pay.
    /// Always in [1, k].
    double replication_factor = 0.0;
};

/// Compute the quality report for `p` on `g`. Deterministic (no clocks);
/// O(V + E) time, O(k) extra space. `algo` is recorded verbatim.
PartitionQuality compute_quality(const CSRGraph& g, const Partitioning& p,
                                 std::string algo = {});

/// Polymorphic partitioning strategy, registry-named like schemes so the
/// sweep stack can select one per cell ("multilevel", "ldg", "weighted-ldg",
/// "fennel", "refennel").
class Partitioner {
public:
    virtual ~Partitioner() = default;
    /// Registry name (stable; used in CellSpec keys and serialized results).
    virtual const char* name() const = 0;
    /// True when the algorithm enforces the hard streaming capacity
    /// streaming_capacity(n, k) on part *node counts* — tests assert the
    /// bound only where the algorithm contracts it.
    virtual bool bounded_balance() const { return false; }
    virtual Partitioning partition(const CSRGraph& g, int k,
                                   std::uint64_t seed) const = 0;
};

/// All registered partitioners, in stable registration order.
const std::vector<const Partitioner*>& registered_partitioners();

/// Lookup by registry name; failure carries the list of valid names.
Expected<const Partitioner*> try_find_partitioner(const std::string& name);

/// Lookup by registry name; throws InvalidArgument on a miss.
const Partitioner& find_partitioner(const std::string& name);

/// Hard per-part node capacity shared by the streaming partitioners:
/// ceil(1.1 * n / k). Always satisfies capacity * k >= n, so a streaming
/// pass that skips full parts can never strand a node.
std::size_t streaming_capacity(std::size_t n, int k);

/// Multilevel k-way partition (METIS-style).
Partitioning partition_multilevel(const CSRGraph& g, int k,
                                  const PartitionConfig& cfg = {});

/// Single-pass streaming partitioner (Linear Deterministic Greedy). Enforces
/// the hard streaming_capacity(n, k) cap on part sizes.
Partitioning partition_ldg(const CSRGraph& g, int k, std::uint64_t seed = 1);

/// LDG over node weights w(v) = degree(v) + 1: balances per-part *adjacency
/// load* instead of node counts, which is what the crossbar mapper cares
/// about. The weight capacity ceil(1.1 * W / k) is enforced except when a
/// single heavy node cannot fit anywhere, in which case it joins the
/// lightest part — so part weight <= capacity + max node weight.
Partitioning partition_ldg_weighted(const CSRGraph& g, int k,
                                    std::uint64_t seed = 1);

/// Streaming Fennel partition (Tsourakakis et al., WSDM'14): score each
/// candidate part by |N(v) ∩ P| − α·γ·load^(γ−1) with γ = 3/2 and
/// α = m·k^(γ−1)/n^γ, under the hard streaming_capacity(n, k) cap.
Partitioning partition_fennel(const CSRGraph& g, int k, std::uint64_t seed = 1);

/// Re-streaming Fennel: run the Fennel pass, then re-stream `passes − 1`
/// more times letting every vertex reconsider its part; the best edge cut
/// seen is returned, so the result is never worse than the first Fennel
/// pass at the same seed.
Partitioning partition_refennel(const CSRGraph& g, int k,
                                std::uint64_t seed = 1, int passes = 3);

}  // namespace fare
