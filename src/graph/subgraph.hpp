// Induced subgraphs and Cluster-GCN-style mini-batches.
//
// Mini-batch GNN training on the ReRAM pipeline (paper §III-A, Fig. 2)
// processes the graph as batches of partition clusters: a batch's adjacency
// matrix is the induced subgraph over the union of a few partitions, and that
// matrix is what FARe's mapper writes onto the crossbars.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/partitioner.hpp"

namespace fare {

/// A batch: an induced subgraph plus the global ids of its nodes.
struct Subgraph {
    std::vector<NodeId> nodes;   ///< local index -> global node id
    /// Local index -> source partition id; filled by make_cluster_batches
    /// (empty for subgraphs built directly via induced_subgraph). The
    /// partition-aware crossbar mapper uses this to give each adjacency
    /// row-block a home tile that follows the cut.
    std::vector<int> node_part;
    CSRGraph graph;              ///< induced graph on `nodes` (local ids)
};

/// Induced subgraph over `nodes` (global ids; order defines local ids).
Subgraph induced_subgraph(const CSRGraph& g, std::vector<NodeId> nodes);

/// Group the k partitions into batches of `partitions_per_batch` clusters
/// (Cluster-GCN). Partition order is shuffled per epoch via `seed`.
/// The final batch may contain fewer clusters.
std::vector<Subgraph> make_cluster_batches(const CSRGraph& g,
                                           const Partitioning& parts,
                                           int partitions_per_batch,
                                           std::uint64_t seed);

}  // namespace fare
