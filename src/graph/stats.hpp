// Graph statistics used to validate the synthetic dataset generators and to
// report dataset characteristics in the Table II bench.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace fare {

struct DegreeStats {
    double mean = 0.0;
    double max = 0.0;
    double p99 = 0.0;  ///< 99th-percentile degree (tail heaviness indicator)
};

DegreeStats degree_stats(const CSRGraph& g);

/// Fraction of undirected edges whose endpoints share a label.
double edge_homophily(const CSRGraph& g, const std::vector<int>& labels);

/// Number of connected components.
std::size_t connected_components(const CSRGraph& g);

/// Graph density: edges / (n choose 2).
double density(const CSRGraph& g);

}  // namespace fare
