#include "graph/stats.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace fare {

DegreeStats degree_stats(const CSRGraph& g) {
    DegreeStats s;
    if (g.num_nodes() == 0) return s;
    std::vector<std::size_t> degrees(g.num_nodes());
    std::size_t total = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        degrees[v] = g.degree(v);
        total += degrees[v];
    }
    std::sort(degrees.begin(), degrees.end());
    s.mean = static_cast<double>(total) / static_cast<double>(g.num_nodes());
    s.max = static_cast<double>(degrees.back());
    const std::size_t idx = std::min<std::size_t>(
        degrees.size() - 1, static_cast<std::size_t>(0.99 * static_cast<double>(degrees.size())));
    s.p99 = static_cast<double>(degrees[idx]);
    return s;
}

double edge_homophily(const CSRGraph& g, const std::vector<int>& labels) {
    FARE_CHECK(labels.size() == g.num_nodes(), "labels size mismatch");
    std::size_t same = 0;
    std::size_t total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (u >= v) continue;
            ++total;
            if (labels[u] == labels[v]) ++same;
        }
    }
    return total == 0 ? 0.0 : static_cast<double>(same) / static_cast<double>(total);
}

std::size_t connected_components(const CSRGraph& g) {
    std::vector<bool> seen(g.num_nodes(), false);
    std::vector<NodeId> stack;
    std::size_t components = 0;
    for (NodeId start = 0; start < g.num_nodes(); ++start) {
        if (seen[start]) continue;
        ++components;
        stack.push_back(start);
        seen[start] = true;
        while (!stack.empty()) {
            const NodeId v = stack.back();
            stack.pop_back();
            for (NodeId u : g.neighbors(v)) {
                if (!seen[u]) {
                    seen[u] = true;
                    stack.push_back(u);
                }
            }
        }
    }
    return components;
}

double density(const CSRGraph& g) {
    const double n = static_cast<double>(g.num_nodes());
    if (n < 2.0) return 0.0;
    return static_cast<double>(g.num_edges()) / (n * (n - 1.0) / 2.0);
}

}  // namespace fare
