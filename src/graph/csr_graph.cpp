#include "graph/csr_graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fare {

CSRGraph CSRGraph::from_edges(NodeId num_nodes,
                              const std::vector<std::pair<NodeId, NodeId>>& edges) {
    CSRGraph g;
    g.num_nodes_ = num_nodes;

    // Normalise: drop self-loops, orient u < v, dedup.
    std::vector<std::pair<NodeId, NodeId>> norm;
    norm.reserve(edges.size());
    for (auto [u, v] : edges) {
        FARE_CHECK(u < num_nodes && v < num_nodes, "edge endpoint out of range");
        if (u == v) continue;
        norm.emplace_back(std::min(u, v), std::max(u, v));
    }
    std::sort(norm.begin(), norm.end());
    norm.erase(std::unique(norm.begin(), norm.end()), norm.end());

    // Counting pass for both directions.
    std::vector<std::size_t> counts(num_nodes + 1, 0);
    for (auto [u, v] : norm) {
        ++counts[u + 1];
        ++counts[v + 1];
    }
    for (NodeId i = 0; i < num_nodes; ++i) counts[i + 1] += counts[i];
    g.offsets_ = counts;

    g.adjacency_.resize(norm.size() * 2);
    std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (auto [u, v] : norm) {
        g.adjacency_[cursor[u]++] = v;
        g.adjacency_[cursor[v]++] = u;
    }
    for (NodeId v = 0; v < num_nodes; ++v) {
        auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
        auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
        std::sort(begin, end);
    }
    return g;
}

CSRGraph CSRGraph::from_csr(NodeId num_nodes, std::vector<std::size_t> offsets,
                            std::vector<NodeId> adjacency) {
    FARE_CHECK(offsets.size() == static_cast<std::size_t>(num_nodes) + 1,
               "offsets must have num_nodes + 1 entries");
    FARE_CHECK(offsets.front() == 0 && offsets.back() == adjacency.size(),
               "offsets must span the adjacency array");
    FARE_CHECK(adjacency.size() % 2 == 0, "arcs must come in both directions");
#ifndef NDEBUG
    for (NodeId v = 0; v < num_nodes; ++v) {
        FARE_CHECK(offsets[v] <= offsets[v + 1], "offsets must be non-decreasing");
        for (std::size_t e = offsets[v]; e < offsets[v + 1]; ++e) {
            FARE_CHECK(adjacency[e] < num_nodes, "edge endpoint out of range");
            FARE_CHECK(adjacency[e] != v, "self-loop in adjacency");
            if (e > offsets[v])
                FARE_CHECK(adjacency[e - 1] < adjacency[e],
                           "adjacency must be sorted and duplicate-free");
        }
    }
#endif
    CSRGraph g;
    g.num_nodes_ = num_nodes;
    g.offsets_ = std::move(offsets);
    g.adjacency_ = std::move(adjacency);
    return g;
}

bool CSRGraph::has_edge(NodeId u, NodeId v) const {
    FARE_CHECK(u < num_nodes_ && v < num_nodes_, "has_edge endpoint out of range");
    auto nb = neighbors(u);
    return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> CSRGraph::edge_list() const {
    std::vector<std::pair<NodeId, NodeId>> out;
    out.reserve(num_edges());
    for (NodeId u = 0; u < num_nodes_; ++u)
        for (NodeId v : neighbors(u))
            if (u < v) out.emplace_back(u, v);
    return out;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
    FARE_CHECK(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
    if (u == v) return;
    edges_.emplace_back(u, v);
}

CSRGraph GraphBuilder::finalize() const {
    return CSRGraph::from_edges(num_nodes_, edges_);
}

}  // namespace fare
