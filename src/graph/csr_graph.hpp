// Compressed-sparse-row graph representation.
//
// Graphs are undirected and stored with both edge directions materialised so
// neighbourhood iteration is a contiguous scan. This is the substrate for the
// synthetic datasets, the partitioner and the batch adjacency matrices that
// FARe maps onto crossbars.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fare {

using NodeId = std::uint32_t;

/// Immutable CSR graph. Build via from_edges() or a GraphBuilder.
class CSRGraph {
public:
    CSRGraph() = default;

    /// Build from an undirected edge list. Duplicate edges and self-loops are
    /// removed; both directions are stored.
    static CSRGraph from_edges(NodeId num_nodes,
                               const std::vector<std::pair<NodeId, NodeId>>& edges);

    /// Adopt pre-built CSR arrays without materialising an edge list — the
    /// path the streaming million-node generator uses. The caller must
    /// supply the from_edges invariants: offsets.size() == num_nodes + 1,
    /// adjacency sorted and duplicate-free within each node's range, no
    /// self-loops, both arc directions present. Cheap shape checks always
    /// run; the per-arc invariants are verified in debug builds only.
    static CSRGraph from_csr(NodeId num_nodes, std::vector<std::size_t> offsets,
                             std::vector<NodeId> adjacency);

    NodeId num_nodes() const { return num_nodes_; }
    /// Number of undirected edges (each counted once).
    std::size_t num_edges() const { return adjacency_.size() / 2; }
    /// Number of stored directed arcs (2x undirected edge count).
    std::size_t num_arcs() const { return adjacency_.size(); }

    std::span<const NodeId> neighbors(NodeId v) const {
        return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
    }

    std::size_t degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

    bool has_edge(NodeId u, NodeId v) const;

    std::span<const std::size_t> offsets() const { return offsets_; }
    std::span<const NodeId> adjacency() const { return adjacency_; }

    /// All undirected edges (u < v), e.g. for re-generation or serialisation.
    std::vector<std::pair<NodeId, NodeId>> edge_list() const;

private:
    NodeId num_nodes_ = 0;
    std::vector<std::size_t> offsets_;  // size num_nodes_+1
    std::vector<NodeId> adjacency_;     // sorted within each node's range
};

/// Incremental builder that tolerates duplicates; finalise() dedups and sorts.
class GraphBuilder {
public:
    explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

    /// Record an undirected edge; self-loops are ignored.
    void add_edge(NodeId u, NodeId v);

    std::size_t pending_edges() const { return edges_.size(); }

    CSRGraph finalize() const;

private:
    NodeId num_nodes_;
    std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace fare
