#include "graph/subgraph.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

Subgraph induced_subgraph(const CSRGraph& g, std::vector<NodeId> nodes) {
    Subgraph sg;
    // Global -> local lookup. Dense vector: graphs here are small.
    std::vector<NodeId> local(g.num_nodes(), std::numeric_limits<NodeId>::max());
    for (NodeId i = 0; i < nodes.size(); ++i) {
        FARE_CHECK(nodes[i] < g.num_nodes(), "subgraph node out of range");
        FARE_CHECK(local[nodes[i]] == std::numeric_limits<NodeId>::max(),
                   "duplicate node in subgraph");
        local[nodes[i]] = i;
    }
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId i = 0; i < nodes.size(); ++i) {
        for (NodeId u : g.neighbors(nodes[i])) {
            const NodeId lu = local[u];
            if (lu != std::numeric_limits<NodeId>::max() && i < lu)
                edges.emplace_back(i, lu);
        }
    }
    sg.graph = CSRGraph::from_edges(static_cast<NodeId>(nodes.size()), edges);
    sg.nodes = std::move(nodes);
    return sg;
}

std::vector<Subgraph> make_cluster_batches(const CSRGraph& g, const Partitioning& parts,
                                           int partitions_per_batch,
                                           std::uint64_t seed) {
    FARE_CHECK(partitions_per_batch >= 1, "partitions_per_batch must be >= 1");
    Rng rng(seed);
    std::vector<int> order(static_cast<std::size_t>(parts.k));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    auto members = parts.part_members();
    std::vector<Subgraph> batches;
    for (std::size_t i = 0; i < order.size();
         i += static_cast<std::size_t>(partitions_per_batch)) {
        std::vector<NodeId> nodes;
        const std::size_t end =
            std::min(order.size(), i + static_cast<std::size_t>(partitions_per_batch));
        for (std::size_t j = i; j < end; ++j) {
            const auto& part = members[static_cast<std::size_t>(order[j])];
            nodes.insert(nodes.end(), part.begin(), part.end());
        }
        if (nodes.empty()) continue;
        std::sort(nodes.begin(), nodes.end());
        Subgraph sub = induced_subgraph(g, std::move(nodes));
        sub.node_part.resize(sub.nodes.size());
        for (std::size_t i = 0; i < sub.nodes.size(); ++i)
            sub.node_part[i] = parts.assignment[sub.nodes[i]];
        batches.push_back(std::move(sub));
    }
    return batches;
}

}  // namespace fare
