// Streaming Fennel and re-streaming ReFennel partitioners.
//
// Fennel (Tsourakakis et al., WSDM'14) interpolates between minimising edge
// cut and balancing part sizes: a vertex v joins the part P maximising
//
//     |N(v) ∩ P| − α·γ·load(P)^(γ−1)        with γ = 3/2,
//                                           α = m·k^(γ−1) / n^γ,
//
// subject to the hard capacity streaming_capacity(n, k) (ν = 1.1). With
// γ = 3/2 the marginal load penalty is α·γ·sqrt(load), so the whole pass is
// one sqrt per (vertex, part) candidate — O(n·k + E) and streaming memory.
//
// ReFennel re-streams the assignment: every vertex is pulled out of its part
// and reconsidered under the same objective, which lets early placement
// mistakes heal once the neighbourhood is known. The best edge cut over all
// passes is returned, so ReFennel is never worse than its own first Fennel
// pass at the same seed — a property the partition_property_test pins.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/partitioner.hpp"

namespace fare {

namespace {

/// One streaming pass over `order`. Entries of `assignment` that are >= 0
/// are re-streamed: the vertex is removed from its current part (its load
/// released) before being re-scored, so the same routine serves both the
/// initial Fennel pass (all entries -1) and ReFennel passes.
void fennel_pass(const CSRGraph& g, int k, const std::vector<NodeId>& order,
                 double alpha, std::size_t capacity, std::vector<int>& assignment,
                 std::vector<std::size_t>& load) {
    constexpr double kGamma = 1.5;
    // Marginal load penalty α·γ·sqrt(l) tabulated per load level: the scan
    // over k parts per vertex becomes a table lookup instead of a sqrt.
    std::vector<double> penalty(capacity + 1);
    for (std::size_t l = 0; l <= capacity; ++l)
        penalty[l] = alpha * kGamma * std::sqrt(static_cast<double>(l));
    std::vector<double> neigh(static_cast<std::size_t>(k), 0.0);
    for (NodeId v : order) {
        if (assignment[v] >= 0) --load[static_cast<std::size_t>(assignment[v])];
        for (NodeId u : g.neighbors(v))
            if (assignment[u] >= 0 && u != v)
                neigh[static_cast<std::size_t>(assignment[u])] += 1.0;
        int best = -1;
        double best_score = 0.0;
        for (int p = 0; p < k; ++p) {
            const std::size_t l = load[static_cast<std::size_t>(p)];
            if (l >= capacity) continue;
            const double s = neigh[static_cast<std::size_t>(p)] - penalty[l];
            if (best < 0 || s > best_score) {
                best_score = s;
                best = p;
            }
        }
        FARE_ASSERT(best >= 0);  // capacity * k >= n guarantees a slot
        assignment[v] = best;
        ++load[static_cast<std::size_t>(best)];
        for (NodeId u : g.neighbors(v))
            if (assignment[u] >= 0) neigh[static_cast<std::size_t>(assignment[u])] = 0.0;
    }
}

double fennel_alpha(const CSRGraph& g, int k) {
    const double n = static_cast<double>(g.num_nodes());
    const double m = static_cast<double>(g.num_edges());
    const double kd = static_cast<double>(k);
    return m * std::sqrt(kd) / (n * std::sqrt(n));
}

Partitioning fennel_impl(const CSRGraph& g, int k, std::uint64_t seed, int passes) {
    FARE_CHECK(k >= 1, "k must be >= 1");
    FARE_CHECK(g.num_nodes() >= static_cast<NodeId>(k), "fewer nodes than parts");
    FARE_CHECK(passes >= 1, "passes must be >= 1");
    Partitioning result;
    result.k = k;
    if (k == 1) {
        result.assignment.assign(g.num_nodes(), 0);
        return result;
    }

    Rng rng(seed);
    const double alpha = fennel_alpha(g, k);
    const std::size_t capacity = streaming_capacity(g.num_nodes(), k);
    std::vector<NodeId> order(g.num_nodes());
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);

    std::vector<int> assignment(g.num_nodes(), -1);
    std::vector<std::size_t> load(static_cast<std::size_t>(k), 0);
    fennel_pass(g, k, order, alpha, capacity, assignment, load);
    result.assignment = assignment;
    std::size_t best_cut = result.edge_cut(g);

    for (int pass = 1; pass < passes; ++pass) {
        rng.shuffle(order);
        fennel_pass(g, k, order, alpha, capacity, assignment, load);
        Partitioning candidate;
        candidate.k = k;
        candidate.assignment = assignment;
        const std::size_t cut = candidate.edge_cut(g);
        if (cut < best_cut) {
            best_cut = cut;
            result.assignment = assignment;
        }
    }
    return result;
}

}  // namespace

Partitioning partition_fennel(const CSRGraph& g, int k, std::uint64_t seed) {
    return fennel_impl(g, k, seed, 1);
}

Partitioning partition_refennel(const CSRGraph& g, int k, std::uint64_t seed,
                                int passes) {
    return fennel_impl(g, k, seed, passes);
}

}  // namespace fare
