#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

namespace {

/// Balanced, shuffled class assignment.
std::vector<int> assign_labels(NodeId n, int num_classes, Rng& rng) {
    std::vector<int> labels(n);
    for (NodeId v = 0; v < n; ++v) labels[v] = static_cast<int>(v % num_classes);
    rng.shuffle(labels);
    return labels;
}

/// Gaussian class centroids + unit noise features.
Matrix make_features(const std::vector<int>& labels, int num_classes, int num_features,
                     double signal, Rng& rng) {
    Matrix centroids(static_cast<std::size_t>(num_classes),
                     static_cast<std::size_t>(num_features));
    for (auto& v : centroids.flat())
        v = static_cast<float>(rng.next_gaussian() * signal);

    Matrix x(labels.size(), static_cast<std::size_t>(num_features));
    for (std::size_t v = 0; v < labels.size(); ++v) {
        auto row = x.row(v);
        auto c = centroids.row(static_cast<std::size_t>(labels[v]));
        for (int f = 0; f < num_features; ++f)
            row[static_cast<std::size_t>(f)] =
                c[static_cast<std::size_t>(f)] + static_cast<float>(rng.next_gaussian());
    }
    return x;
}

/// Stratified train/val/test split.
std::vector<Split> make_split(const std::vector<int>& labels, int num_classes,
                              double train_frac, double val_frac, Rng& rng) {
    std::vector<Split> split(labels.size(), Split::kTest);
    std::vector<std::vector<NodeId>> by_class(static_cast<std::size_t>(num_classes));
    for (NodeId v = 0; v < labels.size(); ++v)
        by_class[static_cast<std::size_t>(labels[v])].push_back(v);
    for (auto& nodes : by_class) {
        rng.shuffle(nodes);
        const auto n_train = static_cast<std::size_t>(std::llround(
            static_cast<double>(nodes.size()) * train_frac));
        const auto n_val = static_cast<std::size_t>(std::llround(
            static_cast<double>(nodes.size()) * val_frac));
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (i < n_train)
                split[nodes[i]] = Split::kTrain;
            else if (i < n_train + n_val)
                split[nodes[i]] = Split::kVal;
        }
    }
    return split;
}

/// Weighted sampler over a fixed population using cumulative sums.
class CumulativeSampler {
public:
    CumulativeSampler(std::vector<NodeId> ids, const std::vector<double>& weights)
        : ids_(std::move(ids)) {
        cum_.reserve(ids_.size());
        double acc = 0.0;
        for (NodeId id : ids_) {
            acc += weights[id];
            cum_.push_back(acc);
        }
        total_ = acc;
    }

    bool empty() const { return ids_.empty() || total_ <= 0.0; }
    double total() const { return total_; }

    NodeId sample(Rng& rng) const {
        const double target = rng.next_double() * total_;
        const auto it = std::lower_bound(cum_.begin(), cum_.end(), target);
        const auto idx = std::min<std::size_t>(
            static_cast<std::size_t>(it - cum_.begin()), ids_.size() - 1);
        return ids_[idx];
    }

private:
    std::vector<NodeId> ids_;
    std::vector<double> cum_;
    double total_ = 0.0;
};

/// Guarantee a minimum degree of 1 by attaching isolated nodes to a random
/// same-class peer (isolated nodes make mini-batch subgraphs degenerate).
void connect_isolated(GraphBuilder& builder, const CSRGraph& g,
                      const std::vector<int>& labels, Rng& rng) {
    std::vector<std::vector<NodeId>> by_class;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto c = static_cast<std::size_t>(labels[v]);
        if (by_class.size() <= c) by_class.resize(c + 1);
        by_class[c].push_back(v);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (g.degree(v) > 0) continue;
        const auto& peers = by_class[static_cast<std::size_t>(labels[v])];
        if (peers.size() < 2) continue;
        NodeId u = v;
        while (u == v) u = peers[rng.next_below(peers.size())];
        builder.add_edge(v, u);
    }
}

Dataset finish_dataset(std::string name, CSRGraph graph, std::vector<int> labels,
                       int num_classes, int num_features, double signal,
                       double train_frac, double val_frac, Rng& rng) {
    Dataset ds;
    ds.name = std::move(name);
    ds.features = make_features(labels, num_classes, num_features, signal, rng);
    ds.split = make_split(labels, num_classes, train_frac, val_frac, rng);
    ds.labels = std::move(labels);
    ds.num_classes = num_classes;
    ds.graph = std::move(graph);
    return ds;
}

/// Shared edge-sampling machinery for the streaming generator: both passes
/// construct this from the same seed so they see the identical draw stream.
struct StreamingEdgeSampler {
    const SyntheticGraphSpec& spec;
    Rng rng;
    std::vector<double> weight_cum;  ///< per-node cumulative Pareto weights
    std::vector<double> comm_cum;    ///< cumulative community total weights

    explicit StreamingEdgeSampler(const SyntheticGraphSpec& s)
        : spec(s), rng(s.seed) {
        // Degree propensities first (consumes the same RNG prefix each pass).
        weight_cum.resize(spec.num_nodes);
        double acc = 0.0;
        for (NodeId v = 0; v < spec.num_nodes; ++v) {
            double w = 1.0;
            if (spec.power_law_alpha > 0.0) {
                const double u = std::max(rng.next_double(), 1e-12);
                w = std::min(std::pow(u, -1.0 / spec.power_law_alpha), 200.0);
            }
            acc += w;
            weight_cum[v] = acc;
        }
        comm_cum.resize(static_cast<std::size_t>(spec.num_communities));
        for (int c = 0; c < spec.num_communities; ++c)
            comm_cum[static_cast<std::size_t>(c)] =
                weight_cum[community_end(c) - 1];
    }

    /// Communities are contiguous, near-equal node ranges.
    NodeId community_begin(int c) const {
        return static_cast<NodeId>(static_cast<std::uint64_t>(spec.num_nodes) *
                                   static_cast<std::uint64_t>(c) /
                                   static_cast<std::uint64_t>(spec.num_communities));
    }
    NodeId community_end(int c) const { return community_begin(c + 1); }

    /// Weighted node draw within [lo, hi) via the global cumulative array.
    NodeId sample_node(NodeId lo, NodeId hi) {
        const double base = lo > 0 ? weight_cum[lo - 1] : 0.0;
        const double total = weight_cum[hi - 1] - base;
        const double target = base + rng.next_double() * total;
        const auto it = std::lower_bound(weight_cum.begin() + lo,
                                         weight_cum.begin() + hi, target);
        const auto idx = std::min<std::size_t>(
            static_cast<std::size_t>(it - weight_cum.begin()), hi - 1);
        return static_cast<NodeId>(idx);
    }

    int sample_community() {
        const double target = rng.next_double() * comm_cum.back();
        const auto it =
            std::lower_bound(comm_cum.begin(), comm_cum.end(), target);
        return std::min<int>(static_cast<int>(it - comm_cum.begin()),
                             spec.num_communities - 1);
    }

    /// One edge draw; returns {u, u} for a skipped (self-loop) attempt. Both
    /// passes see the same sequence of draws.
    std::pair<NodeId, NodeId> next_edge() {
        const int c1 = sample_community();
        const NodeId u = sample_node(community_begin(c1), community_end(c1));
        NodeId v;
        if (rng.next_bool(spec.homophily)) {
            v = sample_node(community_begin(c1), community_end(c1));
        } else {
            v = sample_node(0, spec.num_nodes);
        }
        return {u, v};
    }
};

}  // namespace

CSRGraph make_synthetic_graph(const SyntheticGraphSpec& spec) {
    FARE_CHECK(spec.num_nodes > 0, "empty synthetic graph spec");
    FARE_CHECK(spec.num_communities >= 1, "need at least one community");
    FARE_CHECK(static_cast<NodeId>(spec.num_communities) <= spec.num_nodes,
               "more communities than nodes");
    FARE_CHECK(spec.homophily >= 0.0 && spec.homophily <= 1.0,
               "homophily must lie in [0,1]");
    const auto target_edges = static_cast<std::size_t>(std::llround(
        spec.avg_degree * static_cast<double>(spec.num_nodes) / 2.0));

    // Pass 1: count degrees (self-loop draws are skipped identically in both
    // passes, so the streams stay aligned).
    std::vector<std::size_t> offsets(static_cast<std::size_t>(spec.num_nodes) + 1, 0);
    {
        StreamingEdgeSampler sampler(spec);
        for (std::size_t e = 0; e < target_edges; ++e) {
            const auto [u, v] = sampler.next_edge();
            if (u == v) continue;
            ++offsets[u + 1];
            ++offsets[v + 1];
        }
    }
    for (NodeId v = 0; v < spec.num_nodes; ++v) offsets[v + 1] += offsets[v];

    // Pass 2: re-run the identical stream and scatter arcs into place.
    std::vector<NodeId> adjacency(offsets.back());
    {
        std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
        StreamingEdgeSampler sampler(spec);
        for (std::size_t e = 0; e < target_edges; ++e) {
            const auto [u, v] = sampler.next_edge();
            if (u == v) continue;
            adjacency[cursor[u]++] = v;
            adjacency[cursor[v]++] = u;
        }
    }

    // Sort each node's range and compact duplicates in place. Duplicate
    // draws put the repeat in both endpoints' ranges, so the compaction
    // keeps the two arc directions symmetric.
    for (NodeId v = 0; v < spec.num_nodes; ++v)
        std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    std::size_t write = 0;
    std::size_t range_begin = 0;
    for (NodeId v = 0; v < spec.num_nodes; ++v) {
        const std::size_t range_end = offsets[v + 1];
        NodeId prev = std::numeric_limits<NodeId>::max();
        for (std::size_t e = range_begin; e < range_end; ++e) {
            if (adjacency[e] == prev) continue;
            prev = adjacency[e];
            adjacency[write++] = prev;
        }
        range_begin = range_end;
        offsets[v + 1] = write;
    }
    adjacency.resize(write);
    adjacency.shrink_to_fit();
    return CSRGraph::from_csr(spec.num_nodes, std::move(offsets),
                              std::move(adjacency));
}

Dataset make_sbm_dataset(const SbmSpec& spec) {
    FARE_CHECK(spec.num_nodes > 0 && spec.num_classes > 0, "empty SBM spec");
    FARE_CHECK(spec.homophily >= 0.0 && spec.homophily <= 1.0,
               "homophily must lie in [0,1]");
    Rng rng(spec.seed);
    auto labels = assign_labels(spec.num_nodes, spec.num_classes, rng);

    // Degree propensities: Pareto(alpha) when degree-corrected, else uniform.
    std::vector<double> w(spec.num_nodes, 1.0);
    if (spec.power_law_alpha > 0.0) {
        for (auto& wi : w) {
            const double u = std::max(rng.next_double(), 1e-12);
            wi = std::min(std::pow(u, -1.0 / spec.power_law_alpha), 200.0);
        }
    }

    std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(spec.num_classes));
    for (NodeId v = 0; v < spec.num_nodes; ++v)
        members[static_cast<std::size_t>(labels[v])].push_back(v);

    std::vector<CumulativeSampler> samplers;
    samplers.reserve(members.size());
    for (auto& m : members) samplers.emplace_back(m, w);

    // Class-pick sampler proportional to total class weight.
    std::vector<double> class_weight;
    for (const auto& s : samplers) class_weight.push_back(s.total());
    std::vector<NodeId> class_ids(samplers.size());
    std::iota(class_ids.begin(), class_ids.end(), 0u);
    std::vector<double> cw_by_id(samplers.size());
    for (std::size_t c = 0; c < samplers.size(); ++c) cw_by_id[c] = class_weight[c];
    CumulativeSampler class_sampler(class_ids, cw_by_id);

    const auto target_edges = static_cast<std::size_t>(
        std::llround(spec.avg_degree * static_cast<double>(spec.num_nodes) / 2.0));

    GraphBuilder builder(spec.num_nodes);
    std::size_t attempts = 0;
    const std::size_t max_attempts = target_edges * 20;
    while (builder.pending_edges() < target_edges && attempts++ < max_attempts) {
        std::size_t c1 = class_sampler.sample(rng);
        std::size_t c2 = c1;
        if (!rng.next_bool(spec.homophily)) {
            while (c2 == c1) c2 = class_sampler.sample(rng);
        }
        const NodeId u = samplers[c1].sample(rng);
        const NodeId v = samplers[c2].sample(rng);
        if (u != v) builder.add_edge(u, v);
    }
    CSRGraph g = builder.finalize();
    connect_isolated(builder, g, labels, rng);
    g = builder.finalize();

    return finish_dataset(spec.name, std::move(g), std::move(labels), spec.num_classes,
                          spec.num_features, spec.feature_signal, spec.train_frac,
                          spec.val_frac, rng);
}

Dataset make_citation_dataset(const CitationSpec& spec) {
    FARE_CHECK(spec.num_nodes > static_cast<NodeId>(spec.num_classes),
               "citation graph needs more nodes than classes");
    Rng rng(spec.seed);
    auto labels = assign_labels(spec.num_nodes, spec.num_classes, rng);

    // Preferential attachment via repeat-slot sampling: every node occupies
    // one slot at birth plus one per incident edge, so a uniform slot draw is
    // proportional to degree + 1.
    std::vector<std::vector<NodeId>> slots(static_cast<std::size_t>(spec.num_classes));
    std::vector<NodeId> all_slots;
    GraphBuilder builder(spec.num_nodes);

    for (NodeId v = 0; v < spec.num_nodes; ++v) {
        const auto cls = static_cast<std::size_t>(labels[v]);
        const int want = std::min<int>(spec.edges_per_node, static_cast<int>(v));
        for (int e = 0; e < want; ++e) {
            std::size_t target_cls = cls;
            if (!rng.next_bool(spec.homophily))
                target_cls = rng.next_below(static_cast<std::uint64_t>(spec.num_classes));
            const auto& pool =
                slots[target_cls].empty() ? all_slots : slots[target_cls];
            if (pool.empty()) continue;
            const NodeId u = pool[rng.next_below(pool.size())];
            if (u == v) continue;
            builder.add_edge(u, v);
            slots[static_cast<std::size_t>(labels[u])].push_back(u);
            all_slots.push_back(u);
            slots[cls].push_back(v);
            all_slots.push_back(v);
        }
        slots[cls].push_back(v);
        all_slots.push_back(v);
    }
    CSRGraph g = builder.finalize();
    connect_isolated(builder, g, labels, rng);
    g = builder.finalize();

    return finish_dataset(spec.name, std::move(g), std::move(labels), spec.num_classes,
                          spec.num_features, spec.feature_signal, spec.train_frac,
                          spec.val_frac, rng);
}

// Scaled-down stand-ins for Table II. Node counts are ~100-1000x below the
// real datasets so a full figure sweep runs in CPU-minutes; degree skew,
// density and community strength follow each dataset's published character.

Dataset make_ppi(std::uint64_t seed) {
    SbmSpec spec;
    spec.name = "PPI";
    spec.num_nodes = 1600;
    spec.num_classes = 6;
    spec.num_features = 32;
    spec.avg_degree = 18.0;      // PPI is dense: ~29 avg degree at full scale
    spec.homophily = 0.72;       // biological modules are fuzzy
    spec.power_law_alpha = 0.0;  // near-uniform degrees
    // Feature signal is deliberately weak for all four stand-ins: the GNN
    // must rely on neighbourhood aggregation to classify well, so adjacency
    // corruption has the first-order effect the paper measures (Fig. 3/5).
    spec.feature_signal = 0.5;
    spec.seed = seed * 7919 + 11;
    return make_sbm_dataset(spec);
}

Dataset make_reddit(std::uint64_t seed) {
    SbmSpec spec;
    spec.name = "Reddit";
    spec.num_nodes = 2400;
    spec.num_classes = 8;
    spec.num_features = 32;
    spec.avg_degree = 24.0;      // Reddit is the densest dataset in Table II
    spec.homophily = 0.82;
    spec.power_law_alpha = 1.8;  // heavy-tailed social degrees
    spec.feature_signal = 0.55;
    spec.seed = seed * 7919 + 23;
    return make_sbm_dataset(spec);
}

Dataset make_amazon2m(std::uint64_t seed) {
    SbmSpec spec;
    spec.name = "Amazon2M";
    spec.num_nodes = 3000;
    spec.num_classes = 10;
    spec.num_features = 32;
    spec.avg_degree = 12.0;      // co-purchase graph is sparser per node
    spec.homophily = 0.9;        // product categories cluster strongly
    spec.power_law_alpha = 2.5;  // mild skew
    spec.feature_signal = 0.45;
    spec.seed = seed * 7919 + 37;
    return make_sbm_dataset(spec);
}

Dataset make_ogbl(std::uint64_t seed) {
    CitationSpec spec;
    spec.name = "Ogbl";
    spec.num_nodes = 2800;
    spec.num_classes = 8;
    spec.num_features = 32;
    spec.edges_per_node = 5;     // citation2 avg degree ~10 per direction
    spec.homophily = 0.8;
    spec.feature_signal = 0.5;
    spec.seed = seed * 7919 + 53;
    return make_citation_dataset(spec);
}

}  // namespace fare
