#include "graph/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

std::size_t Partitioning::edge_cut(const CSRGraph& g) const {
    std::size_t cut = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u)
        for (NodeId v : g.neighbors(u))
            if (u < v && assignment[u] != assignment[v]) ++cut;
    return cut;
}

double Partitioning::balance(const CSRGraph& g) const {
    std::vector<std::size_t> sizes(static_cast<std::size_t>(k), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
        ++sizes[static_cast<std::size_t>(assignment[v])];
    const double ideal = static_cast<double>(g.num_nodes()) / k;
    const auto max_size = *std::max_element(sizes.begin(), sizes.end());
    return static_cast<double>(max_size) / ideal;
}

std::vector<std::vector<NodeId>> Partitioning::part_members() const {
    std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(k));
    for (NodeId v = 0; v < assignment.size(); ++v)
        members[static_cast<std::size_t>(assignment[v])].push_back(v);
    return members;
}

namespace {

/// Weighted graph used internally during coarsening. Node weights track the
/// number of original vertices a coarse vertex represents; edge weights the
/// number of original edges a coarse edge aggregates.
struct WGraph {
    std::vector<std::size_t> offsets;
    std::vector<NodeId> adj;
    std::vector<std::uint32_t> eweight;
    std::vector<std::uint32_t> vweight;

    NodeId num_nodes() const { return static_cast<NodeId>(vweight.size()); }
};

WGraph from_csr(const CSRGraph& g) {
    WGraph w;
    w.offsets.assign(g.offsets().begin(), g.offsets().end());
    w.adj.assign(g.adjacency().begin(), g.adjacency().end());
    w.eweight.assign(g.num_arcs(), 1);
    w.vweight.assign(g.num_nodes(), 1);
    return w;
}

/// Heavy-edge matching: visit nodes in random order, match each unmatched
/// node with its unmatched neighbour of maximum edge weight.
std::vector<NodeId> heavy_edge_matching(const WGraph& g, Rng& rng) {
    const NodeId n = g.num_nodes();
    std::vector<NodeId> match(n, std::numeric_limits<NodeId>::max());
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    const auto unmatched = std::numeric_limits<NodeId>::max();
    for (NodeId u : order) {
        if (match[u] != unmatched) continue;
        NodeId best = unmatched;
        std::uint32_t best_w = 0;
        for (std::size_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
            const NodeId v = g.adj[e];
            if (v == u || match[v] != unmatched) continue;
            if (g.eweight[e] > best_w) {
                best_w = g.eweight[e];
                best = v;
            }
        }
        if (best != unmatched) {
            match[u] = best;
            match[best] = u;
        } else {
            match[u] = u;  // self-matched (carried over unchanged)
        }
    }
    return match;
}

struct CoarseLevel {
    WGraph graph;
    std::vector<NodeId> fine_to_coarse;
};

CoarseLevel contract(const WGraph& g, const std::vector<NodeId>& match) {
    const NodeId n = g.num_nodes();
    CoarseLevel level;
    level.fine_to_coarse.assign(n, 0);
    NodeId next = 0;
    for (NodeId u = 0; u < n; ++u) {
        const NodeId m = match[u];
        if (m >= u) level.fine_to_coarse[u] = next++;
    }
    for (NodeId u = 0; u < n; ++u) {
        const NodeId m = match[u];
        if (m < u) level.fine_to_coarse[u] = level.fine_to_coarse[m];
    }
    const NodeId cn = next;

    // Aggregate edges via a per-node scatter map.
    std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> coarse_adj(cn);
    level.graph.vweight.assign(cn, 0);
    for (NodeId u = 0; u < n; ++u)
        level.graph.vweight[level.fine_to_coarse[u]] += g.vweight[u];
    for (NodeId u = 0; u < n; ++u) {
        const NodeId cu = level.fine_to_coarse[u];
        for (std::size_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
            const NodeId cv = level.fine_to_coarse[g.adj[e]];
            if (cu == cv) continue;
            coarse_adj[cu].emplace_back(cv, g.eweight[e]);
        }
    }
    level.graph.offsets.assign(cn + 1, 0);
    for (NodeId cu = 0; cu < cn; ++cu) {
        auto& lst = coarse_adj[cu];
        std::sort(lst.begin(), lst.end());
        // Merge duplicate targets, summing weights.
        std::size_t w = 0;
        for (std::size_t r = 0; r < lst.size();) {
            std::size_t r2 = r;
            std::uint32_t sum = 0;
            while (r2 < lst.size() && lst[r2].first == lst[r].first) sum += lst[r2++].second;
            lst[w++] = {lst[r].first, sum};
            r = r2;
        }
        lst.resize(w);
        level.graph.offsets[cu + 1] = level.graph.offsets[cu] + w;
    }
    level.graph.adj.resize(level.graph.offsets[cn]);
    level.graph.eweight.resize(level.graph.offsets[cn]);
    for (NodeId cu = 0; cu < cn; ++cu) {
        std::size_t pos = level.graph.offsets[cu];
        for (auto [cv, ew] : coarse_adj[cu]) {
            level.graph.adj[pos] = cv;
            level.graph.eweight[pos] = ew;
            ++pos;
        }
    }
    return level;
}

/// Greedy region growing on the coarsest graph: seed k BFS fronts and grow
/// the lightest part one boundary vertex at a time.
std::vector<int> initial_partition(const WGraph& g, int k, double max_part_weight,
                                   Rng& rng) {
    const NodeId n = g.num_nodes();
    std::vector<int> part(n, -1);
    std::vector<double> load(static_cast<std::size_t>(k), 0.0);
    std::vector<std::vector<NodeId>> frontier(static_cast<std::size_t>(k));

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    int seeded = 0;
    for (NodeId v : order) {
        if (seeded == k) break;
        if (part[v] != -1) continue;
        part[v] = seeded;
        load[static_cast<std::size_t>(seeded)] = g.vweight[v];
        frontier[static_cast<std::size_t>(seeded)].push_back(v);
        ++seeded;
    }

    NodeId assigned = static_cast<NodeId>(seeded);
    while (assigned < n) {
        // Grow the currently lightest part.
        int p = 0;
        for (int q = 1; q < k; ++q)
            if (load[static_cast<std::size_t>(q)] < load[static_cast<std::size_t>(p)]) p = q;
        auto& front = frontier[static_cast<std::size_t>(p)];
        NodeId pick = std::numeric_limits<NodeId>::max();
        while (!front.empty()) {
            const NodeId f = front.back();
            bool found = false;
            for (std::size_t e = g.offsets[f]; e < g.offsets[f + 1]; ++e) {
                const NodeId v = g.adj[e];
                if (part[v] == -1) {
                    pick = v;
                    found = true;
                    break;
                }
            }
            if (found) break;
            front.pop_back();
        }
        if (pick == std::numeric_limits<NodeId>::max()) {
            // Frontier exhausted (disconnected component): take any unassigned.
            for (NodeId v : order)
                if (part[v] == -1) {
                    pick = v;
                    break;
                }
        }
        part[pick] = p;
        load[static_cast<std::size_t>(p)] += g.vweight[pick];
        front.push_back(pick);
        ++assigned;
        (void)max_part_weight;
    }
    return part;
}

/// Boundary FM refinement: greedily move boundary vertices to the adjacent
/// part with the highest cut gain, respecting the balance bound.
void refine(const WGraph& g, int k, std::vector<int>& part, double max_part_weight,
            int passes) {
    const NodeId n = g.num_nodes();
    std::vector<double> load(static_cast<std::size_t>(k), 0.0);
    for (NodeId v = 0; v < n; ++v)
        load[static_cast<std::size_t>(part[v])] += g.vweight[v];

    std::vector<std::uint32_t> conn(static_cast<std::size_t>(k), 0);
    for (int pass = 0; pass < passes; ++pass) {
        bool moved = false;
        for (NodeId v = 0; v < n; ++v) {
            std::fill(conn.begin(), conn.end(), 0u);
            for (std::size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e)
                conn[static_cast<std::size_t>(part[g.adj[e]])] += g.eweight[e];
            const int from = part[v];
            int best = from;
            std::int64_t best_gain = 0;
            for (int p = 0; p < k; ++p) {
                if (p == from) continue;
                if (load[static_cast<std::size_t>(p)] + g.vweight[v] > max_part_weight)
                    continue;
                const std::int64_t gain =
                    static_cast<std::int64_t>(conn[static_cast<std::size_t>(p)]) -
                    static_cast<std::int64_t>(conn[static_cast<std::size_t>(from)]);
                if (gain > best_gain) {
                    best_gain = gain;
                    best = p;
                }
            }
            if (best != from) {
                load[static_cast<std::size_t>(from)] -= g.vweight[v];
                load[static_cast<std::size_t>(best)] += g.vweight[v];
                part[v] = best;
                moved = true;
            }
        }
        if (!moved) break;
    }
}

}  // namespace

Partitioning partition_multilevel(const CSRGraph& g, int k, const PartitionConfig& cfg) {
    FARE_CHECK(k >= 1, "k must be >= 1");
    FARE_CHECK(g.num_nodes() >= static_cast<NodeId>(k), "fewer nodes than parts");
    Partitioning result;
    result.k = k;
    if (k == 1) {
        result.assignment.assign(g.num_nodes(), 0);
        return result;
    }

    Rng rng(cfg.seed);
    const double total_weight = static_cast<double>(g.num_nodes());
    const double max_part_weight = (1.0 + cfg.epsilon) * total_weight / k;
    const NodeId coarse_target = static_cast<NodeId>(
        std::max(k * cfg.coarsen_factor, cfg.coarsen_floor));

    // Coarsening phase.
    std::vector<CoarseLevel> levels;
    WGraph current = from_csr(g);
    while (current.num_nodes() > coarse_target) {
        auto match = heavy_edge_matching(current, rng);
        CoarseLevel level = contract(current, match);
        // Matching stalled (e.g. star graphs): stop coarsening.
        if (level.graph.num_nodes() >= current.num_nodes() * 95 / 100) break;
        levels.push_back(std::move(level));
        current = levels.back().graph;
    }

    // Initial partition on the coarsest graph.
    std::vector<int> part = initial_partition(current, k, max_part_weight, rng);
    refine(current, k, part, max_part_weight, cfg.refine_passes);

    // Uncoarsen with refinement at every level.
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
        const auto& mapping = it->fine_to_coarse;
        std::vector<int> finer(mapping.size());
        for (NodeId v = 0; v < mapping.size(); ++v) finer[v] = part[mapping[v]];
        part = std::move(finer);
        const WGraph* fine_graph = nullptr;
        if (it + 1 != levels.rend())
            fine_graph = &(it + 1)->graph;
        WGraph original;
        if (fine_graph == nullptr) {
            original = from_csr(g);
            fine_graph = &original;
        }
        refine(*fine_graph, k, part, max_part_weight, cfg.refine_passes);
    }

    result.assignment = std::move(part);
    return result;
}

std::size_t streaming_capacity(std::size_t n, int k) {
    return static_cast<std::size_t>(
        std::ceil(1.1 * static_cast<double>(n) / static_cast<double>(k)));
}

PartitionQuality compute_quality(const CSRGraph& g, const Partitioning& p,
                                 std::string algo) {
    FARE_CHECK(p.k >= 1, "partitioning has no parts");
    FARE_CHECK(p.assignment.size() == g.num_nodes(),
               "assignment size does not match graph");
    PartitionQuality q;
    q.algo = std::move(algo);
    q.parts = p.k;

    const std::size_t k = static_cast<std::size_t>(p.k);
    const NodeId n = g.num_nodes();
    std::vector<std::size_t> nodes_per(k, 0);
    std::vector<std::size_t> arcs_per(k, 0);
    std::size_t cut = 0;
    for (NodeId u = 0; u < n; ++u) {
        const auto pu = static_cast<std::size_t>(p.assignment[u]);
        ++nodes_per[pu];
        for (NodeId v : g.neighbors(u)) {
            ++arcs_per[pu];
            if (u < v && p.assignment[u] != p.assignment[v]) ++cut;
        }
    }
    q.edge_cut = cut;
    q.edge_cut_rate = g.num_edges() > 0
                          ? static_cast<double>(cut) / static_cast<double>(g.num_edges())
                          : 0.0;
    const auto max_nodes = *std::max_element(nodes_per.begin(), nodes_per.end());
    q.beta = n > 0 ? static_cast<double>(max_nodes) * static_cast<double>(k) /
                         static_cast<double>(n)
                   : 1.0;
    const auto max_arcs = *std::max_element(arcs_per.begin(), arcs_per.end());
    q.alpha = g.num_arcs() > 0
                  ? static_cast<double>(max_arcs) * static_cast<double>(k) /
                        static_cast<double>(g.num_arcs())
                  : 1.0;

    // Replication factor: distinct parts across each vertex's closed
    // neighbourhood, averaged. A per-part stamp array keeps this O(V + E).
    std::vector<NodeId> stamp(k, std::numeric_limits<NodeId>::max());
    std::size_t replicas = 0;
    for (NodeId u = 0; u < n; ++u) {
        stamp[static_cast<std::size_t>(p.assignment[u])] = u;
        ++replicas;
        for (NodeId v : g.neighbors(u)) {
            const auto pv = static_cast<std::size_t>(p.assignment[v]);
            if (stamp[pv] != u) {
                stamp[pv] = u;
                ++replicas;
            }
        }
    }
    q.replication_factor =
        n > 0 ? static_cast<double>(replicas) / static_cast<double>(n) : 1.0;
    return q;
}

namespace {

class MultilevelPartitioner final : public Partitioner {
public:
    const char* name() const override { return "multilevel"; }
    Partitioning partition(const CSRGraph& g, int k,
                           std::uint64_t seed) const override {
        PartitionConfig cfg;
        cfg.seed = seed;
        return partition_multilevel(g, k, cfg);
    }
};

class LdgPartitioner final : public Partitioner {
public:
    const char* name() const override { return "ldg"; }
    bool bounded_balance() const override { return true; }
    Partitioning partition(const CSRGraph& g, int k,
                           std::uint64_t seed) const override {
        return partition_ldg(g, k, seed);
    }
};

class WeightedLdgPartitioner final : public Partitioner {
public:
    const char* name() const override { return "weighted-ldg"; }
    Partitioning partition(const CSRGraph& g, int k,
                           std::uint64_t seed) const override {
        return partition_ldg_weighted(g, k, seed);
    }
};

class FennelPartitioner final : public Partitioner {
public:
    const char* name() const override { return "fennel"; }
    bool bounded_balance() const override { return true; }
    Partitioning partition(const CSRGraph& g, int k,
                           std::uint64_t seed) const override {
        return partition_fennel(g, k, seed);
    }
};

class ReFennelPartitioner final : public Partitioner {
public:
    const char* name() const override { return "refennel"; }
    bool bounded_balance() const override { return true; }
    Partitioning partition(const CSRGraph& g, int k,
                           std::uint64_t seed) const override {
        return partition_refennel(g, k, seed);
    }
};

}  // namespace

const std::vector<const Partitioner*>& registered_partitioners() {
    static const MultilevelPartitioner multilevel;
    static const LdgPartitioner ldg;
    static const WeightedLdgPartitioner weighted_ldg;
    static const FennelPartitioner fennel;
    static const ReFennelPartitioner refennel;
    static const std::vector<const Partitioner*> all = {
        &multilevel, &ldg, &weighted_ldg, &fennel, &refennel};
    return all;
}

Expected<const Partitioner*> try_find_partitioner(const std::string& name) {
    for (const Partitioner* p : registered_partitioners())
        if (name == p->name()) return p;
    std::ostringstream os;
    os << "unknown partitioner '" << name << "' (valid:";
    for (const Partitioner* p : registered_partitioners()) os << ' ' << p->name();
    os << ')';
    return Expected<const Partitioner*>::failure(os.str());
}

const Partitioner& find_partitioner(const std::string& name) {
    auto found = try_find_partitioner(name);
    if (!found) throw InvalidArgument(found.error());
    return *found.value();
}

}  // namespace fare
