// A node-classification dataset: graph + node features + labels + split.
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "numeric/matrix.hpp"

namespace fare {

/// Which split a node belongs to.
enum class Split : std::uint8_t { kTrain, kVal, kTest };

struct Dataset {
    std::string name;
    CSRGraph graph;
    Matrix features;           ///< num_nodes x num_features
    std::vector<int> labels;   ///< one class id per node
    int num_classes = 0;
    std::vector<Split> split;  ///< one entry per node

    std::size_t num_nodes() const { return graph.num_nodes(); }
    std::size_t num_features() const { return features.cols(); }

    std::vector<NodeId> nodes_in(Split s) const {
        std::vector<NodeId> out;
        for (NodeId v = 0; v < graph.num_nodes(); ++v)
            if (split[v] == s) out.push_back(v);
        return out;
    }
};

}  // namespace fare
