// Synthetic graph dataset generators.
//
// The paper evaluates on PPI, Reddit, Amazon2M and OGB-citation2 (Table II).
// Those datasets cannot ship with this repo, so we generate scaled-down
// synthetic stand-ins whose *structural character* matches each dataset:
// degree skew, density, community strength and class structure (see
// DESIGN.md §1 for the substitution argument). Two generator families are
// provided:
//
//  * degree-corrected stochastic block model (DC-SBM) — communities equal
//    classes, optional power-law degree propensities (PPI / Reddit /
//    Amazon2M stand-ins);
//  * class-biased preferential attachment — citation-style growth
//    (OGB-citation2 stand-in).
//
// Node features are noisy class centroids with tunable signal-to-noise so the
// aggregation phase genuinely matters: a GNN beats a feature-only classifier,
// and corrupting the adjacency measurably hurts accuracy — the effect Fig. 3
// and Fig. 5 quantify.
#pragma once

#include <cstdint>

#include "graph/dataset.hpp"

namespace fare {

/// Parameters for the DC-SBM generator.
struct SbmSpec {
    std::string name = "sbm";
    NodeId num_nodes = 2000;
    int num_classes = 6;
    int num_features = 32;
    double avg_degree = 12.0;
    /// Probability that a sampled edge is intra-class (edge homophily).
    double homophily = 0.8;
    /// Pareto shape for degree propensities; <=0 disables degree correction
    /// (near-regular degrees). Smaller alpha => heavier tail.
    double power_law_alpha = 0.0;
    /// Feature centroid magnitude relative to unit Gaussian noise.
    double feature_signal = 0.9;
    /// Fractions of nodes in train/val (remainder is test).
    double train_frac = 0.6;
    double val_frac = 0.2;
    std::uint64_t seed = 1;
};

/// Parameters for the preferential-attachment (citation-style) generator.
struct CitationSpec {
    std::string name = "citation";
    NodeId num_nodes = 2000;
    int num_classes = 6;
    int num_features = 32;
    /// Edges added per new node.
    int edges_per_node = 6;
    /// Probability a new edge attaches within the node's own class.
    double homophily = 0.8;
    double feature_signal = 0.9;
    double train_frac = 0.6;
    double val_frac = 0.2;
    std::uint64_t seed = 1;
};

/// Parameters for the streaming graph-only generator. Unlike the Dataset
/// generators it produces no features/labels/split — just structure — so it
/// scales to million-node / hundred-million-edge graphs: edges are drawn in
/// two identical passes over one deterministic RNG stream (count degrees,
/// then fill adjacency), so nothing but the final CSR arrays is ever held
/// in memory (no edge-list materialisation, no dense adjacency).
struct SyntheticGraphSpec {
    NodeId num_nodes = 1'000'000;
    double avg_degree = 16.0;
    /// Communities are contiguous node ranges (community quality is what the
    /// partitioners are asked to recover).
    int num_communities = 64;
    /// Probability that a sampled edge stays inside its community.
    double homophily = 0.9;
    /// Pareto shape for degree propensities; <=0 disables degree correction.
    double power_law_alpha = 0.0;
    std::uint64_t seed = 1;
};

/// Streaming graph-only generator (see SyntheticGraphSpec). Deterministic
/// per seed; the result satisfies every from_edges invariant (sorted,
/// duplicate-free, self-loop-free adjacency with both arc directions).
CSRGraph make_synthetic_graph(const SyntheticGraphSpec& spec);

/// Degree-corrected SBM dataset.
Dataset make_sbm_dataset(const SbmSpec& spec);

/// Class-biased preferential-attachment dataset.
Dataset make_citation_dataset(const CitationSpec& spec);

/// Scaled-down stand-ins for the paper's four datasets (Table II).
/// Each takes a seed so experiments can average over graph instances.
Dataset make_ppi(std::uint64_t seed = 1);       ///< dense biological modules
Dataset make_reddit(std::uint64_t seed = 1);    ///< heavy-tailed social graph
Dataset make_amazon2m(std::uint64_t seed = 1);  ///< strongly clustered co-purchase
Dataset make_ogbl(std::uint64_t seed = 1);      ///< citation-style growth

}  // namespace fare
