#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace fare {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::uninitialized(std::size_t rows, std::size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_.resize(rows * cols);  // default-init: no fill
    return m;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        FARE_CHECK(row.size() == cols_, "ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

float& Matrix::at(std::size_t r, std::size_t c) {
    FARE_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
    FARE_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

void Matrix::xavier_init(Rng& rng) {
    const float limit = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
    for (auto& v : data_) v = rng.uniform(-limit, limit);
}

void Matrix::fill(float v) {
    for (auto& x : data_) x = v;
}

Matrix Matrix::transposed() const {
    Matrix t = Matrix::uninitialized(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

float Matrix::norm() const {
    double acc = 0.0;
    for (float v : data_) acc += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(acc));
}

float Matrix::max_abs() const {
    float m = 0.0f;
    for (float v : data_) m = std::max(m, std::fabs(v));
    return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
    FARE_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
    FARE_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(float scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
}

bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
}

namespace {

// Blocked GEMM micro-kernels over raw __restrict pointers. Three invariants:
//
//  1. For every output element, partial products accumulate in ascending-k
//     order into a private register/stack accumulator, regardless of row
//     blocking, column tiling, or which worker computes the row — so the
//     threaded result is bit-identical to the serial result, and both are
//     bit-identical across thread counts.
//  2. Each output row is written by exactly one worker (kernels take a row
//     range), so no synchronisation and no non-deterministic reductions.
//  3. __restrict + stack accumulators let the compiler keep the accumulator
//     tile in vector registers across the k loop instead of reloading the
//     output row per step (the old kernels' bottleneck).
//
// kColTile bounds the stack accumulators (4 rows x 256 floats = 4 KiB).
constexpr std::size_t kColTile = 256;

// Rows per parallel chunk: a multiple of the 4-row unroll.
constexpr std::size_t kRowChunk = 32;

/// c[i0..i1) = a[i0..i1) * b for row-major a (M x K), b (K x N), c (M x N).
void matmul_rows(const float* __restrict a, const float* __restrict b,
                 float* __restrict c, std::size_t i0, std::size_t i1,
                 std::size_t cols_a, std::size_t cols_b) {
    const std::size_t K = cols_a, N = cols_b;
    for (std::size_t j0 = 0; j0 < N; j0 += kColTile) {
        const std::size_t jn = std::min(kColTile, N - j0);
        std::size_t i = i0;
        for (; i + 4 <= i1; i += 4) {
            float acc0[kColTile], acc1[kColTile], acc2[kColTile], acc3[kColTile];
            for (std::size_t j = 0; j < jn; ++j) acc0[j] = 0.0f;
            for (std::size_t j = 0; j < jn; ++j) acc1[j] = 0.0f;
            for (std::size_t j = 0; j < jn; ++j) acc2[j] = 0.0f;
            for (std::size_t j = 0; j < jn; ++j) acc3[j] = 0.0f;
            const float* __restrict a0 = a + (i + 0) * K;
            const float* __restrict a1 = a + (i + 1) * K;
            const float* __restrict a2 = a + (i + 2) * K;
            const float* __restrict a3 = a + (i + 3) * K;
            for (std::size_t k = 0; k < K; ++k) {
                const float* __restrict brow = b + k * N + j0;
                const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
                for (std::size_t j = 0; j < jn; ++j) {
                    const float bj = brow[j];
                    acc0[j] += v0 * bj;
                    acc1[j] += v1 * bj;
                    acc2[j] += v2 * bj;
                    acc3[j] += v3 * bj;
                }
            }
            for (std::size_t j = 0; j < jn; ++j) c[(i + 0) * N + j0 + j] = acc0[j];
            for (std::size_t j = 0; j < jn; ++j) c[(i + 1) * N + j0 + j] = acc1[j];
            for (std::size_t j = 0; j < jn; ++j) c[(i + 2) * N + j0 + j] = acc2[j];
            for (std::size_t j = 0; j < jn; ++j) c[(i + 3) * N + j0 + j] = acc3[j];
        }
        for (; i < i1; ++i) {
            float acc[kColTile];
            for (std::size_t j = 0; j < jn; ++j) acc[j] = 0.0f;
            const float* __restrict arow = a + i * K;
            for (std::size_t k = 0; k < K; ++k) {
                const float v = arow[k];
                const float* __restrict brow = b + k * N + j0;
                for (std::size_t j = 0; j < jn; ++j) acc[j] += v * brow[j];
            }
            for (std::size_t j = 0; j < jn; ++j) c[i * N + j0 + j] = acc[j];
        }
    }
}

/// c[i0..i1) = (a^T)[i0..i1) * b for a (K x M), b (K x N), c (M x N):
/// output row i reads column i of a.
void matmul_at_b_rows(const float* __restrict a, const float* __restrict b,
                      float* __restrict c, std::size_t i0, std::size_t i1,
                      std::size_t rows_a, std::size_t cols_a, std::size_t cols_b) {
    const std::size_t K = rows_a, M = cols_a, N = cols_b;
    for (std::size_t j0 = 0; j0 < N; j0 += kColTile) {
        const std::size_t jn = std::min(kColTile, N - j0);
        std::size_t i = i0;
        for (; i + 4 <= i1; i += 4) {
            float acc0[kColTile], acc1[kColTile], acc2[kColTile], acc3[kColTile];
            for (std::size_t j = 0; j < jn; ++j) acc0[j] = 0.0f;
            for (std::size_t j = 0; j < jn; ++j) acc1[j] = 0.0f;
            for (std::size_t j = 0; j < jn; ++j) acc2[j] = 0.0f;
            for (std::size_t j = 0; j < jn; ++j) acc3[j] = 0.0f;
            for (std::size_t k = 0; k < K; ++k) {
                const float* __restrict acol = a + k * M + i;
                const float* __restrict brow = b + k * N + j0;
                const float v0 = acol[0], v1 = acol[1], v2 = acol[2], v3 = acol[3];
                for (std::size_t j = 0; j < jn; ++j) {
                    const float bj = brow[j];
                    acc0[j] += v0 * bj;
                    acc1[j] += v1 * bj;
                    acc2[j] += v2 * bj;
                    acc3[j] += v3 * bj;
                }
            }
            for (std::size_t j = 0; j < jn; ++j) c[(i + 0) * N + j0 + j] = acc0[j];
            for (std::size_t j = 0; j < jn; ++j) c[(i + 1) * N + j0 + j] = acc1[j];
            for (std::size_t j = 0; j < jn; ++j) c[(i + 2) * N + j0 + j] = acc2[j];
            for (std::size_t j = 0; j < jn; ++j) c[(i + 3) * N + j0 + j] = acc3[j];
        }
        for (; i < i1; ++i) {
            float acc[kColTile];
            for (std::size_t j = 0; j < jn; ++j) acc[j] = 0.0f;
            for (std::size_t k = 0; k < K; ++k) {
                const float v = a[k * M + i];
                const float* __restrict brow = b + k * N + j0;
                for (std::size_t j = 0; j < jn; ++j) acc[j] += v * brow[j];
            }
            for (std::size_t j = 0; j < jn; ++j) c[i * N + j0 + j] = acc[j];
        }
    }
}

/// c[i0..i1) = a[i0..i1) * b^T for a (M x K), b (N x K), c (M x N):
/// four dot products at a time share each load of a's row.
void matmul_a_bt_rows(const float* __restrict a, const float* __restrict b,
                      float* __restrict c, std::size_t i0, std::size_t i1,
                      std::size_t cols_a, std::size_t rows_b) {
    const std::size_t K = cols_a, N = rows_b;
    for (std::size_t i = i0; i < i1; ++i) {
        const float* __restrict arow = a + i * K;
        std::size_t j = 0;
        for (; j + 4 <= N; j += 4) {
            const float* __restrict b0 = b + j * K;
            const float* __restrict b1 = b0 + K;
            const float* __restrict b2 = b1 + K;
            const float* __restrict b3 = b2 + K;
            float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
            for (std::size_t k = 0; k < K; ++k) {
                const float av = arow[k];
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            c[i * N + j] = s0;
            c[i * N + j + 1] = s1;
            c[i * N + j + 2] = s2;
            c[i * N + j + 3] = s3;
        }
        for (; j < N; ++j) {
            const float* __restrict brow = b + j * K;
            float acc = 0.0f;
            for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
            c[i * N + j] = acc;
        }
    }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
    Matrix c = Matrix::uninitialized(a.rows(), b.cols());
    const std::size_t work = a.rows() * a.cols() * b.cols();
    parallel_row_blocks(a.rows(), work, kRowChunk, [&](std::size_t i0, std::size_t i1) {
        matmul_rows(a.flat().data(), b.flat().data(), c.flat().data(), i0, i1,
                    a.cols(), b.cols());
    });
    return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.rows() == b.rows(), "matmul_at_b shape mismatch");
    Matrix c = Matrix::uninitialized(a.cols(), b.cols());
    const std::size_t work = a.rows() * a.cols() * b.cols();
    parallel_row_blocks(a.cols(), work, kRowChunk, [&](std::size_t i0, std::size_t i1) {
        matmul_at_b_rows(a.flat().data(), b.flat().data(), c.flat().data(), i0, i1,
                         a.rows(), a.cols(), b.cols());
    });
    return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
    Matrix c = Matrix::uninitialized(a.rows(), b.rows());
    const std::size_t work = a.rows() * a.cols() * b.rows();
    parallel_row_blocks(a.rows(), work, kRowChunk, [&](std::size_t i0, std::size_t i1) {
        matmul_a_bt_rows(a.flat().data(), b.flat().data(), c.flat().data(), i0, i1,
                         a.cols(), b.rows());
    });
    return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) c.flat()[i] = a.flat()[i] * b.flat()[i];
    return c;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "max_abs_diff shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a.flat()[i] - b.flat()[i]));
    return m;
}

}  // namespace fare
