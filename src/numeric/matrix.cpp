#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace fare {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::uninitialized(std::size_t rows, std::size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_.resize(rows * cols);  // default-init: no fill
    return m;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        FARE_CHECK(row.size() == cols_, "ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

float& Matrix::at(std::size_t r, std::size_t c) {
    FARE_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
    FARE_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

void Matrix::xavier_init(Rng& rng) {
    const float limit = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
    for (auto& v : data_) v = rng.uniform(-limit, limit);
}

void Matrix::fill(float v) {
    for (auto& x : data_) x = v;
}

Matrix Matrix::transposed() const {
    Matrix t = Matrix::uninitialized(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

float Matrix::norm() const {
    double acc = 0.0;
    for (float v : data_) acc += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(acc));
}

float Matrix::max_abs() const {
    float m = 0.0f;
    for (float v : data_) m = std::max(m, std::fabs(v));
    return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
    FARE_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
    FARE_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(float scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
}

bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
}

namespace {

// Rows per parallel chunk: a multiple of the kernels' 4-row unroll.
constexpr std::size_t kRowChunk = 32;

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
    Matrix c = Matrix::uninitialized(a.rows(), b.cols());
    const std::size_t work = a.rows() * a.cols() * b.cols();
    const simd::SimdKernels& k = simd::kernels();
    parallel_row_blocks(a.rows(), work, kRowChunk, [&](std::size_t i0, std::size_t i1) {
        k.matmul_rows(a.flat().data(), b.flat().data(), c.flat().data(), i0, i1,
                      a.cols(), b.cols());
    });
    return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.rows() == b.rows(), "matmul_at_b shape mismatch");
    Matrix c = Matrix::uninitialized(a.cols(), b.cols());
    const std::size_t work = a.rows() * a.cols() * b.cols();
    const simd::SimdKernels& k = simd::kernels();
    parallel_row_blocks(a.cols(), work, kRowChunk, [&](std::size_t i0, std::size_t i1) {
        k.matmul_at_b_rows(a.flat().data(), b.flat().data(), c.flat().data(), i0,
                           i1, a.rows(), a.cols(), b.cols());
    });
    return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
    Matrix c = Matrix::uninitialized(a.rows(), b.rows());
    const std::size_t work = a.rows() * a.cols() * b.rows();
    const simd::SimdKernels& k = simd::kernels();
    parallel_row_blocks(a.rows(), work, kRowChunk, [&](std::size_t i0, std::size_t i1) {
        k.matmul_a_bt_rows(a.flat().data(), b.flat().data(), c.flat().data(), i0,
                           i1, a.cols(), b.rows());
    });
    return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) c.flat()[i] = a.flat()[i] * b.flat()[i];
    return c;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
    FARE_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "max_abs_diff shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a.flat()[i] - b.flat()[i]));
    return m;
}

}  // namespace fare
