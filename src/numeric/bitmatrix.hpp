// Dense binary matrix: the host-side image of what the crossbars store for a
// batch adjacency (paper: adjacency matrices are stored 1 bit per cell).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "graph/csr_graph.hpp"

namespace fare {

struct BitMatrix {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint8_t> bits;  // row-major 0/1

    BitMatrix() = default;
    BitMatrix(std::size_t r, std::size_t c) : rows(r), cols(c), bits(r * c, 0) {}

    std::uint8_t at(std::size_t r, std::size_t c) const { return bits[r * cols + c]; }
    void set(std::size_t r, std::size_t c, std::uint8_t v) { bits[r * cols + c] = v; }

    std::size_t count_ones() const {
        std::size_t n = 0;
        for (auto b : bits) n += b;
        return n;
    }

    /// Adjacency bit-matrix of a graph (symmetric, no self loops).
    static BitMatrix from_graph(const CSRGraph& g) {
        BitMatrix m(g.num_nodes(), g.num_nodes());
        for (NodeId u = 0; u < g.num_nodes(); ++u)
            for (NodeId v : g.neighbors(u)) m.set(u, v, 1);
        return m;
    }
};

}  // namespace fare
