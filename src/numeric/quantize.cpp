#include "numeric/quantize.hpp"

#include "common/simd.hpp"

namespace fare {

FixedMatrix quantize(const Matrix& m) {
    FixedMatrix q;
    q.rows = m.rows();
    q.cols = m.cols();
    q.data.resize(m.size());  // default-init: every element written below
    simd::kernels().quantize_i16(m.flat().data(), q.data.data(), m.size());
    return q;
}

Matrix dequantize(const FixedMatrix& q) {
    Matrix m = Matrix::uninitialized(q.rows, q.cols);
    simd::kernels().dequantize_i16(q.data.data(), m.flat().data(), q.data.size());
    return m;
}

Matrix quantize_dequantize(const Matrix& m) {
    // Fused: no intermediate FixedMatrix.
    Matrix out = Matrix::uninitialized(m.rows(), m.cols());
    simd::kernels().quantize_dequantize(m.flat().data(), out.flat().data(), m.size());
    return out;
}

}  // namespace fare
