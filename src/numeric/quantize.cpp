#include "numeric/quantize.hpp"

namespace fare {

FixedMatrix quantize(const Matrix& m) {
    FixedMatrix q;
    q.rows = m.rows();
    q.cols = m.cols();
    q.data.resize(m.size());
    auto src = m.flat();
    for (std::size_t i = 0; i < src.size(); ++i) q.data[i] = float_to_fixed(src[i]);
    return q;
}

Matrix dequantize(const FixedMatrix& q) {
    Matrix m(q.rows, q.cols);
    auto dst = m.flat();
    for (std::size_t i = 0; i < q.data.size(); ++i) dst[i] = fixed_to_float(q.data[i]);
    return m;
}

Matrix quantize_dequantize(const Matrix& m) {
    return dequantize(quantize(m));
}

}  // namespace fare
