// Matrix-level quantisation helpers bridging the float training world and the
// fixed-point storage world of the simulated crossbars.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/fixed_point.hpp"
#include "numeric/matrix.hpp"

namespace fare {

/// A matrix quantised to the hardware's 16-bit fixed-point grid. Storage is
/// 64-byte aligned like Matrix so the SIMD quantise/dequantise kernels run
/// on cache-line-aligned rows.
struct FixedMatrix {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::int16_t, detail::AlignedAllocator<std::int16_t>> data;  // row-major

    std::int16_t& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
    std::int16_t at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
};

/// Quantise every element (round-to-nearest, saturating).
FixedMatrix quantize(const Matrix& m);

/// Dequantise back to float.
Matrix dequantize(const FixedMatrix& q);

/// Round-trip a float matrix through the fixed-point grid, i.e. the value the
/// hardware would actually compute with in the absence of faults.
Matrix quantize_dequantize(const Matrix& m);

/// Worst-case absolute quantisation error of the format (half a step).
inline constexpr float kQuantErrorBound = kFixedStep / 2.0f;

}  // namespace fare
