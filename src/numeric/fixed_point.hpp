// 16-bit fixed-point representation used by the simulated ReRAM hardware.
//
// The paper (Sec. III-A): "weights on ReRAM-based architectures are commonly
// represented using 16-bit fixed-point precision. The 16 bits are distributed
// across multiple cells with architectures often adopting a 2-bit
// representation per cell." We use a Q8.8 format stored SIGN-MAGNITUDE on
// the cells (bit 15 = sign, bits 14..0 = magnitude), split into 8 cells of
// 2 bits, most-significant slice first, recombined by the tile's
// shift-and-add unit. Sign-magnitude matches differential-array ReRAM
// practice and gives the fault semantics the paper describes (Fig. 1a):
// a stuck-at-1 in a high slice sets large magnitude bits — "weight
// explosion" — while a stuck-at-0 merely clears (mostly already-zero)
// magnitude bits of small weights.
#pragma once

#include <array>
#include <cstdint>

namespace fare {

/// Number of fraction bits in the Q-format (Q8.8).
inline constexpr int kFixedFractionBits = 8;
/// Total bits per weight.
inline constexpr int kFixedTotalBits = 16;
/// Bits stored per ReRAM cell (Table III: 2-bit/cell resolution).
inline constexpr int kBitsPerCell = 2;
/// Cells per 16-bit weight (= 8).
inline constexpr int kCellsPerWeight = kFixedTotalBits / kBitsPerCell;
/// Largest representable magnitude (sign-magnitude Q8.8, symmetric range).
inline constexpr float kFixedMax = 127.99609375f;   // 0x7FFF / 256
inline constexpr float kFixedMin = -127.99609375f;  // -0x7FFF / 256

/// One weight's bit-slices: slice[0] holds the two most significant bits.
using CellSlices = std::array<std::uint8_t, kCellsPerWeight>;

/// Quantise a float to the Q8.8 grid (round to nearest, saturate at the
/// symmetric format limits; -32768 is never produced).
std::int16_t float_to_fixed(float v);

/// Exact inverse of the quantiser on in-range values.
float fixed_to_float(std::int16_t q);

/// Split a value into 8 cells of 2 bits of its sign-magnitude encoding
/// (sign bit + 15 magnitude bits), MSB slice first.
CellSlices slice_fixed(std::int16_t q);

/// Recombine cell slices into the signed value (shift-and-add + sign).
std::int16_t unslice_fixed(const CellSlices& slices);

/// Quantisation step (1/256 for Q8.8).
inline constexpr float kFixedStep = 1.0f / (1 << kFixedFractionBits);

}  // namespace fare
