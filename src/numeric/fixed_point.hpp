// 16-bit fixed-point representation used by the simulated ReRAM hardware.
//
// The paper (Sec. III-A): "weights on ReRAM-based architectures are commonly
// represented using 16-bit fixed-point precision. The 16 bits are distributed
// across multiple cells with architectures often adopting a 2-bit
// representation per cell." We use a Q8.8 format stored SIGN-MAGNITUDE on
// the cells (bit 15 = sign, bits 14..0 = magnitude), split into 8 cells of
// 2 bits, most-significant slice first, recombined by the tile's
// shift-and-add unit. Sign-magnitude matches differential-array ReRAM
// practice and gives the fault semantics the paper describes (Fig. 1a):
// a stuck-at-1 in a high slice sets large magnitude bits — "weight
// explosion" — while a stuck-at-0 merely clears (mostly already-zero)
// magnitude bits of small weights.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace fare {

/// Number of fraction bits in the Q-format (Q8.8).
inline constexpr int kFixedFractionBits = 8;
/// Total bits per weight.
inline constexpr int kFixedTotalBits = 16;
/// Bits stored per ReRAM cell (Table III: 2-bit/cell resolution).
inline constexpr int kBitsPerCell = 2;
/// Cells per 16-bit weight (= 8).
inline constexpr int kCellsPerWeight = kFixedTotalBits / kBitsPerCell;
/// Largest representable magnitude (sign-magnitude Q8.8, symmetric range).
inline constexpr float kFixedMax = 127.99609375f;   // 0x7FFF / 256
inline constexpr float kFixedMin = -127.99609375f;  // -0x7FFF / 256

/// One weight's bit-slices: slice[0] holds the two most significant bits.
using CellSlices = std::array<std::uint8_t, kCellsPerWeight>;

/// Quantise a float to the Q8.8 grid (round to nearest, saturate at the
/// symmetric format limits; -32768 is never produced). Inline: this runs
/// once per weight per batch in the corruption hot path.
inline std::int16_t float_to_fixed(float v) {
    const float scaled = v * static_cast<float>(1 << kFixedFractionBits);
    const float rounded = std::nearbyint(scaled);
    // Symmetric saturation: sign-magnitude cannot encode -32768.
    if (rounded >= 32767.0f) return 32767;
    if (rounded <= -32767.0f) return -32767;
    return static_cast<std::int16_t>(rounded);
}

/// Exact inverse of the quantiser on in-range values.
inline float fixed_to_float(std::int16_t q) {
    return static_cast<float>(q) / static_cast<float>(1 << kFixedFractionBits);
}

/// The 16-bit cell image of a value: bit 15 = sign, bits 14..0 = magnitude.
/// Equals the concatenation of slice_fixed()'s slices, MSB slice first —
/// the domain the compiled fault-overlay masks operate in.
inline std::uint16_t fixed_to_cell_image(std::int16_t q) {
    const std::uint16_t mag =
        static_cast<std::uint16_t>(q < 0 ? -static_cast<std::int32_t>(q)
                                         : static_cast<std::int32_t>(q)) &
        0x7FFFu;
    return static_cast<std::uint16_t>((q < 0 ? 0x8000u : 0u) | mag);
}

/// Inverse of fixed_to_cell_image (identical to unslice_fixed on the
/// re-assembled slices; 0x8000 decodes to 0 just like unslice does).
inline std::int16_t cell_image_to_fixed(std::uint16_t u) {
    const auto mag = static_cast<std::int32_t>(u & 0x7FFFu);
    return static_cast<std::int16_t>((u & 0x8000u) ? -mag : mag);
}

/// Split a value into 8 cells of 2 bits of its sign-magnitude encoding
/// (sign bit + 15 magnitude bits), MSB slice first.
CellSlices slice_fixed(std::int16_t q);

/// Recombine cell slices into the signed value (shift-and-add + sign).
std::int16_t unslice_fixed(const CellSlices& slices);

/// Quantisation step (1/256 for Q8.8).
inline constexpr float kFixedStep = 1.0f / (1 << kFixedFractionBits);

}  // namespace fare
