#include "numeric/fixed_point.hpp"

namespace fare {

CellSlices slice_fixed(std::int16_t q) {
    const std::uint16_t u = fixed_to_cell_image(q);
    CellSlices slices{};
    for (int c = 0; c < kCellsPerWeight; ++c) {
        const int shift = kFixedTotalBits - kBitsPerCell * (c + 1);
        slices[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>((u >> shift) & 0x3u);
    }
    return slices;
}

std::int16_t unslice_fixed(const CellSlices& slices) {
    std::uint16_t u = 0;
    for (int c = 0; c < kCellsPerWeight; ++c) {
        u = static_cast<std::uint16_t>(u << kBitsPerCell);
        u = static_cast<std::uint16_t>(u | (slices[static_cast<std::size_t>(c)] & 0x3u));
    }
    return cell_image_to_fixed(u);
}

}  // namespace fare
