#include "numeric/fixed_point.hpp"

#include <cmath>
#include <cstdlib>

namespace fare {

std::int16_t float_to_fixed(float v) {
    const float scaled = v * static_cast<float>(1 << kFixedFractionBits);
    const float rounded = std::nearbyint(scaled);
    // Symmetric saturation: sign-magnitude cannot encode -32768.
    if (rounded >= 32767.0f) return 32767;
    if (rounded <= -32767.0f) return -32767;
    return static_cast<std::int16_t>(rounded);
}

float fixed_to_float(std::int16_t q) {
    return static_cast<float>(q) / static_cast<float>(1 << kFixedFractionBits);
}

CellSlices slice_fixed(std::int16_t q) {
    // Sign-magnitude cell image: bit 15 = sign, bits 14..0 = |q|.
    const std::uint16_t mag =
        static_cast<std::uint16_t>(q < 0 ? -static_cast<std::int32_t>(q)
                                         : static_cast<std::int32_t>(q)) &
        0x7FFFu;
    const std::uint16_t u =
        static_cast<std::uint16_t>((q < 0 ? 0x8000u : 0u) | mag);
    CellSlices slices{};
    for (int c = 0; c < kCellsPerWeight; ++c) {
        const int shift = kFixedTotalBits - kBitsPerCell * (c + 1);
        slices[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>((u >> shift) & 0x3u);
    }
    return slices;
}

std::int16_t unslice_fixed(const CellSlices& slices) {
    std::uint16_t u = 0;
    for (int c = 0; c < kCellsPerWeight; ++c) {
        u = static_cast<std::uint16_t>(u << kBitsPerCell);
        u = static_cast<std::uint16_t>(u | (slices[static_cast<std::size_t>(c)] & 0x3u));
    }
    const auto mag = static_cast<std::int32_t>(u & 0x7FFFu);
    return static_cast<std::int16_t>((u & 0x8000u) ? -mag : mag);
}

}  // namespace fare
