// Dense row-major float matrix plus the small set of kernels the GNN stack
// needs (GEMM, transpose, row ops). Deliberately minimal: the point of this
// repo is the fault-tolerance system, not a BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <span>
#include <utility>
#include <vector>

namespace fare {

class Rng;

namespace detail {

/// Matrix / FixedMatrix storage alignment: one full cache line, which also
/// covers the widest vector the SIMD kernel tables use (32-byte AVX2). The
/// kernels only issue unaligned loads, so this is purely a performance
/// property — no caller may rely on it for correctness.
inline constexpr std::size_t kDataAlignment = 64;

/// Allocator with two hot-path properties:
///  1. allocations are kDataAlignment-aligned (single allocation path — the
///     aligned operator new, no manual over-allocate-and-offset);
///  2. plain construct() default-initialises, so vector::resize leaves
///     trivial elements uninitialised. Only used behind
///     Matrix::uninitialized() and quantise outputs, where every element is
///     overwritten before any read — skips a redundant memset.
template <typename T>
struct AlignedAllocator {
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) noexcept {}
    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U>;
    };

    T* allocate(std::size_t n) {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{kDataAlignment}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{kDataAlignment});
    }

    template <typename U, typename... Args>
    void construct(U* p, Args&&... args) {
        if constexpr (sizeof...(Args) == 0)
            ::new (static_cast<void*>(p)) U;
        else
            ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
        return true;
    }
};

}  // namespace detail

/// Row-major dense matrix of float.
///
/// Value-semantic (copyable/movable); shape is part of the logical state and
/// is validated on every binary operation.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);
    /// Build from nested initializer list (rows of equal length).
    Matrix(std::initializer_list<std::initializer_list<float>> init);

    /// A (rows x cols) matrix with UNINITIALISED contents. Strictly for
    /// buffers the caller overwrites in full before any read.
    static Matrix uninitialized(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    float& at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

    std::span<float> flat() { return data_; }
    std::span<const float> flat() const { return data_; }

    /// Fill with Xavier/Glorot uniform initialisation for a (fan_in, fan_out)
    /// weight matrix.
    void xavier_init(Rng& rng);

    void fill(float v);
    Matrix transposed() const;

    /// Frobenius norm.
    float norm() const;
    float max_abs() const;

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(float scalar);

    friend bool operator==(const Matrix& a, const Matrix& b);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float, detail::AlignedAllocator<float>> data_;
};

// The three GEMMs dispatch to the runtime-selected SIMD kernel table
// (common/simd.hpp) and are row-parallelised over the common/parallel worker
// pool above a fixed work threshold. Accumulation order per output element
// is ascending-k for every blocking, thread count and instruction set, so
// results are bit-identical to a serial scalar run.

/// C = A * B. Shapes validated.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materialising A^T.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T without materialising B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// Elementwise Hadamard product.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Max |a - b| over all elements; shapes must match.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace fare
