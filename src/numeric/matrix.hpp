// Dense row-major float matrix plus the small set of kernels the GNN stack
// needs (GEMM, transpose, row ops). Deliberately minimal: the point of this
// repo is the fault-tolerance system, not a BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace fare {

class Rng;

namespace detail {
/// Allocator that default-initialises on plain construct(), so
/// vector<float>::resize leaves the floats uninitialised. Only used behind
/// Matrix::uninitialized() for buffers every element of which is about to be
/// overwritten (GEMM outputs, overlay apply) — skips a redundant memset on
/// the hot path.
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
    template <typename U>
    struct rebind {
        using other = DefaultInitAllocator<U>;
    };
    template <typename U, typename... Args>
    void construct(U* p, Args&&... args) {
        if constexpr (sizeof...(Args) == 0)
            ::new (static_cast<void*>(p)) U;
        else
            ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
};
}  // namespace detail

/// Row-major dense matrix of float.
///
/// Value-semantic (copyable/movable); shape is part of the logical state and
/// is validated on every binary operation.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);
    /// Build from nested initializer list (rows of equal length).
    Matrix(std::initializer_list<std::initializer_list<float>> init);

    /// A (rows x cols) matrix with UNINITIALISED contents. Strictly for
    /// buffers the caller overwrites in full before any read.
    static Matrix uninitialized(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    float& at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

    std::span<float> flat() { return data_; }
    std::span<const float> flat() const { return data_; }

    /// Fill with Xavier/Glorot uniform initialisation for a (fan_in, fan_out)
    /// weight matrix.
    void xavier_init(Rng& rng);

    void fill(float v);
    Matrix transposed() const;

    /// Frobenius norm.
    float norm() const;
    float max_abs() const;

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(float scalar);

    friend bool operator==(const Matrix& a, const Matrix& b);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float, detail::DefaultInitAllocator<float>> data_;
};

// The three GEMMs are blocked (register-tiled accumulators) and
// row-parallelised over the common/parallel worker pool above a fixed work
// threshold. Accumulation order per output element is ascending-k for every
// blocking and thread count, so results are bit-identical to a serial run.

/// C = A * B. Shapes validated.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materialising A^T.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T without materialising B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// Elementwise Hadamard product.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Max |a - b| over all elements; shapes must match.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace fare
