#include "reram/crossbar.hpp"

#include "common/error.hpp"

namespace fare {

Crossbar::Crossbar(std::uint16_t rows, std::uint16_t cols)
    : rows_(rows),
      cols_(cols),
      cells_(static_cast<std::size_t>(rows) * cols, 0),
      cell_writes_(static_cast<std::size_t>(rows) * cols, 0),
      faults_(rows, cols) {
    FARE_CHECK(rows > 0 && cols > 0, "crossbar dimensions must be positive");
}

void Crossbar::set_fault_map(FaultMap map) {
    FARE_CHECK(map.rows() == rows_ && map.cols() == cols_,
               "fault map dimensions must match crossbar");
    faults_ = std::move(map);
}

void Crossbar::program(std::uint16_t row, std::uint16_t col, std::uint8_t level) {
    FARE_CHECK(row < rows_ && col < cols_, "program position out of range");
    FARE_CHECK(level <= max_level(), "level exceeds cell resolution");
    ++writes_;
    const std::uint32_t cell_count = ++cell_writes_[index(row, col)];
    if (cell_count > max_cell_extra_) max_cell_extra_ = cell_count;
    cells_[index(row, col)] = level;  // stuck cells keep their stored value
}

void Crossbar::program_row(std::uint16_t row, const std::vector<std::uint8_t>& levels) {
    FARE_CHECK(levels.size() == cols_, "row width mismatch");
    for (std::uint16_t c = 0; c < cols_; ++c) program(row, c, levels[c]);
}

std::uint8_t Crossbar::read(std::uint16_t row, std::uint16_t col) const {
    FARE_CHECK(row < rows_ && col < cols_, "read position out of range");
    const auto fault = faults_.at(row, col);
    if (fault.has_value())
        return *fault == FaultType::kSA0 ? 0 : max_level();
    return cells_[index(row, col)];
}

std::uint8_t Crossbar::stored(std::uint16_t row, std::uint16_t col) const {
    FARE_CHECK(row < rows_ && col < cols_, "stored position out of range");
    return cells_[index(row, col)];
}

bool Crossbar::reform(std::uint16_t row, std::uint16_t col, std::uint32_t pulses) {
    FARE_CHECK(row < rows_ && col < cols_, "reform position out of range");
    FARE_CHECK(pulses > 0, "reform needs at least one pulse");
    writes_ += pulses;
    const std::uint32_t cell_count = (cell_writes_[index(row, col)] += pulses);
    if (cell_count > max_cell_extra_) max_cell_extra_ = cell_count;
    if (faults_.is_faulty(row, col) && faults_.is_soft(row, col))
        faults_.clear(row, col);
    return !faults_.is_faulty(row, col);
}

}  // namespace fare
