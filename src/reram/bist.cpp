#include "reram/bist.hpp"

namespace fare {

BistResult bist_scan(Crossbar& xbar) {
    const std::uint16_t rows = xbar.rows();
    const std::uint16_t cols = xbar.cols();
    BistResult result;
    result.detected = FaultMap(rows, cols);

    // Save original contents (the pristine stored levels; faulty cells keep
    // whatever they held, programming them is a no-op anyway).
    std::vector<std::uint8_t> saved(static_cast<std::size_t>(rows) * cols);
    for (std::uint16_t r = 0; r < rows; ++r)
        for (std::uint16_t c = 0; c < cols; ++c)
            saved[static_cast<std::size_t>(r) * cols + c] = xbar.stored(r, c);

    const std::uint8_t lo = 0;
    const std::uint8_t hi = Crossbar::max_level();

    // March pass 1: write 0 everywhere, read back; non-zero => SA1.
    for (std::uint16_t r = 0; r < rows; ++r)
        for (std::uint16_t c = 0; c < cols; ++c) {
            xbar.program(r, c, lo);
            if (xbar.read(r, c) != lo) result.detected.add(r, c, FaultType::kSA1);
            result.cell_ops += 2;
        }
    // March pass 2: write max everywhere, read back; below max => SA0.
    for (std::uint16_t r = 0; r < rows; ++r)
        for (std::uint16_t c = 0; c < cols; ++c) {
            xbar.program(r, c, hi);
            if (xbar.read(r, c) != hi) result.detected.add(r, c, FaultType::kSA0);
            result.cell_ops += 2;
        }
    // Restore.
    for (std::uint16_t r = 0; r < rows; ++r)
        for (std::uint16_t c = 0; c < cols; ++c) {
            xbar.program(r, c, saved[static_cast<std::size_t>(r) * cols + c]);
            ++result.cell_ops;
        }
    return result;
}

}  // namespace fare
