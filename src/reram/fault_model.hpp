// Stuck-at-fault (SAF) model for ReRAM crossbars.
//
// Paper §II-A / §V-A: SAFs pin a cell to low resistance (stuck-at-1) or high
// resistance (stuck-at-0); they cluster around fault centres, which the paper
// models as a Poisson distribution of fault counts *across* crossbars with a
// uniform distribution *within* each crossbar, and a configurable SA0:SA1
// ratio (9:1 from characterisation data [6], plus a pessimistic 1:1).
// Pre-deployment faults exist at t = 0-; post-deployment faults accumulate
// with write wear and are injected incrementally between epochs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fare {

class Rng;

enum class FaultType : std::uint8_t { kSA0 = 1, kSA1 = 2 };

struct CellFault {
    std::uint16_t row = 0;
    std::uint16_t col = 0;
    FaultType type = FaultType::kSA0;
};

/// Fault map of a single crossbar: dense lookup grid + sparse listing.
class FaultMap {
public:
    FaultMap() = default;
    FaultMap(std::uint16_t rows, std::uint16_t cols);

    std::uint16_t rows() const { return rows_; }
    std::uint16_t cols() const { return cols_; }

    /// Add (or overwrite) a fault at a cell. `soft` marks a transient
    /// (re-formable) stuck-at: it corrupts reads and is BIST-detected exactly
    /// like a hard fault, but a re-forming pulse train (Crossbar::reform)
    /// can clear it. Hard faults are permanent.
    void add(std::uint16_t row, std::uint16_t col, FaultType type,
             bool soft = false);

    /// Remove the fault at a cell (no-op when healthy). Used by the online
    /// correction path after a successful re-form.
    void clear(std::uint16_t row, std::uint16_t col);

    /// Fault at a cell, if any.
    std::optional<FaultType> at(std::uint16_t row, std::uint16_t col) const;

    bool is_faulty(std::uint16_t row, std::uint16_t col) const {
        return grid_[index(row, col)] != 0;
    }

    /// True iff the cell holds a *soft* (re-formable) fault.
    bool is_soft(std::uint16_t row, std::uint16_t col) const {
        return soft_[index(row, col)] != 0;
    }

    /// All faults, sorted by (row, col).
    std::vector<CellFault> all_faults() const;

    /// Faults within one crossbar row, sorted by column.
    std::vector<CellFault> row_faults(std::uint16_t row) const;

    std::size_t num_faults() const { return num_sa0_ + num_sa1_; }
    std::size_t num_sa0() const { return num_sa0_; }
    std::size_t num_sa1() const { return num_sa1_; }
    std::size_t num_soft() const { return num_soft_; }

    /// Fraction of faulty cells.
    double fault_density() const;

private:
    std::size_t index(std::uint16_t r, std::uint16_t c) const {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    std::uint16_t rows_ = 0;
    std::uint16_t cols_ = 0;
    std::vector<std::uint8_t> grid_;  // 0 = healthy, else FaultType
    std::vector<std::uint8_t> soft_;  // 1 = re-formable (soft) fault
    std::size_t num_sa0_ = 0;
    std::size_t num_sa1_ = 0;
    std::size_t num_soft_ = 0;
};

/// Injection parameters (paper §V-A).
struct FaultInjectionConfig {
    /// Fraction of all cells that are faulty ("fault density").
    double density = 0.05;
    /// Fraction of faults that are SA1 (0.1 => SA0:SA1 = 9:1; 0.5 => 1:1).
    double sa1_fraction = 0.1;
    /// Clustering of faults across crossbars ("fault centers" [6]): each
    /// crossbar's fault count is Poisson with a Gamma-distributed rate of
    /// this shape (a Gamma–Poisson mixture). Small shape => strongly
    /// clustered: many near-clean crossbars, a few fault centers. <= 0
    /// degenerates to a pure Poisson with fixed rate (no clustering).
    double cluster_shape = 1.5;
    std::uint64_t seed = 1;
};

/// Sample fault maps for `num_crossbars` crossbars: Poisson-distributed fault
/// counts across crossbars, uniform placement within each crossbar.
std::vector<FaultMap> inject_faults(std::size_t num_crossbars, std::uint16_t rows,
                                    std::uint16_t cols,
                                    const FaultInjectionConfig& config);

/// Add post-deployment faults on top of existing maps: `added_density` more
/// of each crossbar's cells become faulty (skipping already-faulty cells).
/// Returns the number of faults placed. `soft` marks the placed faults as
/// re-formable; when `touched` is non-null, the indices of maps that gained
/// at least one fault are appended to it.
std::size_t inject_additional_faults(std::vector<FaultMap>& maps,
                                     double added_density, double sa1_fraction,
                                     Rng& rng, bool soft = false,
                                     std::vector<std::size_t>* touched = nullptr);

/// Aggregate density over a set of crossbars.
double mean_fault_density(const std::vector<FaultMap>& maps);

/// Hardware redundancy baseline [8]: replace the `num_spares` columns with
/// the most (SA1-weighted) faults by spare columns, i.e. drop their faults
/// from the map. Spares are assumed fault-free — the usual optimistic
/// assumption for the redundancy baseline.
FaultMap repair_worst_columns(const FaultMap& map, std::size_t num_spares,
                              double sa1_weight = 4.0);

}  // namespace fare
