#include "reram/online_tolerance.hpp"

#include <algorithm>
#include <cstdlib>

#include "reram/bist.hpp"

namespace fare {

void OnlineToleranceEngine::note_arrivals(
    std::uint64_t step, const std::vector<std::size_t>& touched) {
    for (std::size_t xb : touched) {
        auto it = pending_arrivals_.find(xb);
        // Keep the *earliest* pending arrival: latency is measured from the
        // first damage the next march of this crossbar will discover.
        if (it == pending_arrivals_.end())
            pending_arrivals_.emplace(xb, step);
    }
}

double OnlineToleranceEngine::signature_error(
    const Crossbar& xbar, const CrossbarRepair* repair,
    const std::set<std::uint32_t>* known) const {
    std::uint64_t abs_err = 0;
    for (std::uint16_t r = 0; r < xbar.rows(); ++r)
        for (std::uint16_t c = 0; c < xbar.cols(); ++c) {
            if (repair != nullptr && repair->substituted.count(c) > 0)
                continue;  // reads routed to the fault-free spare
            if (known != nullptr &&
                known->count((static_cast<std::uint32_t>(r) << 16) | c) > 0)
                continue;  // folded into the fault-adjusted golden value
            const int delta = static_cast<int>(xbar.read(r, c)) -
                              static_cast<int>(xbar.stored(r, c));
            abs_err += static_cast<std::uint64_t>(std::abs(delta));
        }
    const double cells = static_cast<double>(xbar.rows()) *
                         static_cast<double>(xbar.cols());
    return static_cast<double>(abs_err) /
           (static_cast<double>(Crossbar::max_level()) * cells);
}

void OnlineToleranceEngine::repair_crossbar(std::uint64_t step,
                                            Accelerator& accel, std::size_t xb,
                                            OnlineRoundOutcome& outcome) {
    Crossbar& xbar = accel.crossbar(xb);
    // Targeted march: exact detection, but the march writes wear the cells.
    const BistResult scan = bist_scan(xbar);
    outcome.march_cell_ops += scan.cell_ops;

    CrossbarRepair& repair = repairs_[xb];
    std::set<std::uint32_t>& known = known_[xb];
    std::map<std::uint16_t, std::size_t> hard_cols;  // col -> hard fault count
    for (const CellFault& f : scan.detected.all_faults()) {
        if (repair.substituted.count(f.col) > 0) continue;  // already on spare
        const std::uint32_t cell_key =
            (static_cast<std::uint32_t>(f.row) << 16) | f.col;
        if (known.insert(cell_key).second) {
            ++stats_.faults_detected;
            outcome.state_changed = true;
        }
        if (xbar.fault_map().is_soft(f.row, f.col)) {
            // Targeted re-programming: forming pulses clear the soft
            // stuck-at; the pulses are charged as writes (repair wears).
            xbar.reform(f.row, f.col, spec_.reprogram_pulses);
            outcome.repair_pulses += spec_.reprogram_pulses;
            stats_.repair_writes += spec_.reprogram_pulses;
            ++stats_.soft_repaired;
            known.erase(cell_key);  // healthy again; a re-fail counts anew
            outcome.state_changed = true;
        } else {
            ++hard_cols[f.col];
        }
    }

    // Redundant-column substitution: worst hard columns first (count desc,
    // column asc — fully deterministic) while spares remain.
    std::vector<std::pair<std::uint16_t, std::size_t>> order(hard_cols.begin(),
                                                             hard_cols.end());
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                         if (a.second != b.second) return a.second > b.second;
                         return a.first < b.first;
                     });
    std::size_t uncovered = 0;
    for (const auto& [col, count] : order) {
        (void)count;
        if (repair.substituted.size() < spec_.spare_columns) {
            repair.substituted.insert(col);
            ++stats_.columns_substituted;
            outcome.state_changed = true;
        } else {
            ++uncovered;
        }
    }
    // Exhaustion = spares used up with hard faults left uncovered: the
    // crossbar degrades to fault-aware remap (residual faults stay in the
    // mitigation view; nothing crashes).
    repair.exhausted = uncovered > 0;

    // Detection-latency sample: this march discovers everything that arrived
    // on this crossbar since its last march.
    auto pending = pending_arrivals_.find(xb);
    if (pending != pending_arrivals_.end()) {
        stats_.latency_steps_sum += step - pending->second;
        ++stats_.latency_samples;
        pending_arrivals_.erase(pending);
    }
}

OnlineRoundOutcome OnlineToleranceEngine::detection_round(
    std::uint64_t step, Accelerator& accel,
    const std::vector<std::size_t>& in_use) {
    OnlineRoundOutcome outcome;
    ++stats_.detection_rounds;
    if (in_use.empty()) return outcome;

    // Rotating partial march window.
    std::set<std::size_t> to_march;
    const std::size_t window = std::min(spec_.march_window, in_use.size());
    for (std::size_t k = 0; k < window; ++k)
        to_march.insert(in_use[(cursor_ + k) % in_use.size()]);
    cursor_ = (cursor_ + window) % in_use.size();

    // Error-bounded readback everywhere else; escalate noisy crossbars.
    for (std::size_t xb : in_use) {
        if (to_march.count(xb) > 0) continue;
        ++outcome.readback_checks;
        ++stats_.readback_checks;
        auto rep = repairs_.find(xb);
        const CrossbarRepair* repair =
            rep == repairs_.end() ? nullptr : &rep->second;
        auto kn = known_.find(xb);
        const std::set<std::uint32_t>* known =
            kn == known_.end() ? nullptr : &kn->second;
        if (signature_error(accel.crossbar(xb), repair, known) >
            spec_.readback_tolerance)
            to_march.insert(xb);
    }

    // March + repair in sorted crossbar order (std::set) — deterministic.
    for (std::size_t xb : to_march) repair_crossbar(step, accel, xb, outcome);
    stats_.march_cell_ops += outcome.march_cell_ops;

    std::uint64_t exhausted = 0;
    for (const auto& [xb, repair] : repairs_)
        if (repair.exhausted) ++exhausted;
    stats_.crossbars_exhausted = exhausted;
    return outcome;
}

FaultMap OnlineToleranceEngine::repaired_map(std::size_t crossbar_index,
                                             const FaultMap& truth) const {
    auto it = repairs_.find(crossbar_index);
    if (it == repairs_.end() || it->second.substituted.empty()) return truth;
    FaultMap out(truth.rows(), truth.cols());
    for (const CellFault& f : truth.all_faults())
        if (it->second.substituted.count(f.col) == 0)
            out.add(f.row, f.col, f.type, truth.is_soft(f.row, f.col));
    return out;
}

bool OnlineToleranceEngine::exhausted(std::size_t crossbar_index) const {
    auto it = repairs_.find(crossbar_index);
    return it != repairs_.end() && it->second.exhausted;
}

std::size_t OnlineToleranceEngine::spares_used(std::size_t crossbar_index) const {
    auto it = repairs_.find(crossbar_index);
    return it == repairs_.end() ? 0 : it->second.substituted.size();
}

}  // namespace fare
