// The ReRAM PIM accelerator: a pool of tiles with flat crossbar addressing,
// fault injection, BIST scanning and region allocation.
//
// Weight matrices are allocated to a fixed crossbar range once (they stay
// resident across training); adjacency blocks stream through a separate range
// every mini-batch (paper Fig. 2). The accelerator tracks per-crossbar write
// counts so wear-driven post-deployment fault injection has a hook.
#pragma once

#include <cstdint>
#include <vector>

#include "reram/bist.hpp"
#include "reram/tile.hpp"

namespace fare {

class Rng;

struct AcceleratorConfig {
    TileSpec tile;
    int num_tiles = 4;
};

/// Contiguous range of flat crossbar indices reserved for one matrix.
struct CrossbarRange {
    std::size_t first = 0;
    std::size_t count = 0;
};

class Accelerator {
public:
    explicit Accelerator(const AcceleratorConfig& config = {});

    const AcceleratorConfig& config() const { return config_; }
    std::size_t num_crossbars() const;
    std::size_t num_tiles() const { return tiles_.size(); }

    /// Flat indexing across tiles: crossbar i lives in tile i / per_tile.
    Crossbar& crossbar(std::size_t flat_index);
    const Crossbar& crossbar(std::size_t flat_index) const;

    Tile& tile(std::size_t i);

    /// Reserve the next `count` unallocated crossbars. Throws ResourceError
    /// when the pool is exhausted.
    CrossbarRange allocate(std::size_t count);

    /// Crossbars not yet reserved.
    std::size_t crossbars_available() const;

    /// Inject pre-deployment faults into every crossbar
    /// (Poisson-across / uniform-within; see FaultInjectionConfig).
    void inject_pre_deployment_faults(const FaultInjectionConfig& config);

    /// Wear: add faults on top of the existing maps (post-deployment).
    /// Returns the number of faults actually added (the Poisson draws may
    /// yield zero — callers skip their BIST refresh then). When `touched`
    /// is non-null the flat indices of crossbars that received at least one
    /// fault are appended to it (online detection-latency bookkeeping).
    std::size_t inject_post_deployment_faults(
        double added_density, double sa1_fraction, Rng& rng,
        std::vector<std::size_t>* touched = nullptr);

    /// Soft-error arrival: like inject_post_deployment_faults but the placed
    /// stuck-ats are *soft* — re-formable by the online correction path
    /// (Crossbar::reform). Schemes without online correction see them as
    /// ordinary permanent stuck-ats.
    std::size_t inject_soft_faults(double added_density, double sa1_fraction,
                                   Rng& rng,
                                   std::vector<std::size_t>* touched = nullptr);

    /// Run BIST across all crossbars; returns one detected map per crossbar.
    std::vector<FaultMap> bist_scan_all();

    /// Ground-truth fault maps (copies) — used by tests to validate BIST.
    std::vector<FaultMap> true_fault_maps() const;

    /// Total area / peak power of the modelled chip.
    double total_area_mm2() const;
    double peak_power_w() const;

private:
    AcceleratorConfig config_;
    std::vector<Tile> tiles_;
    std::size_t next_free_ = 0;
};

}  // namespace fare
