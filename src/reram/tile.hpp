// ReRAM tile: the unit of Table III.
//
//   96 ADCs (8-bit), 12x128x8 DACs (1-bit), 96 crossbars of 128x128 cells,
//   10 MHz array clock, 2-bit/cell, 8 comparators (16-bit @ 2 GHz) and 8
//   2:1 muxes implementing weight clipping, 0.34 W, 0.157 mm^2.
#pragma once

#include <cstdint>
#include <vector>

#include "reram/crossbar.hpp"

namespace fare {

struct TileSpec {
    std::uint16_t crossbar_rows = 128;
    std::uint16_t crossbar_cols = 128;
    int crossbars_per_tile = 96;
    int bits_per_cell = 2;
    int adc_bits = 8;
    int num_adcs = 96;
    int num_dacs = 12 * 128 * 8;  // 1-bit DACs
    double array_clock_hz = 10e6;
    int num_comparators = 8;       // 16-bit comparators for clipping
    double comparator_clock_hz = 2e9;
    int num_muxes = 8;             // 2:1 muxes for clipping
    double power_w = 0.34;
    double area_mm2 = 0.157;

    std::size_t cells_per_crossbar() const {
        return static_cast<std::size_t>(crossbar_rows) * crossbar_cols;
    }
    std::size_t cells_per_tile() const {
        return cells_per_crossbar() * static_cast<std::size_t>(crossbars_per_tile);
    }
};

/// A tile owns its crossbars. Crossbars are addressed 0..crossbars_per_tile.
class Tile {
public:
    explicit Tile(const TileSpec& spec = {});

    const TileSpec& spec() const { return spec_; }
    std::size_t num_crossbars() const { return crossbars_.size(); }

    Crossbar& crossbar(std::size_t i);
    const Crossbar& crossbar(std::size_t i) const;

    /// Total cell writes across all crossbars (wear accounting).
    std::uint64_t total_writes() const;

private:
    TileSpec spec_;
    std::vector<Crossbar> crossbars_;
};

}  // namespace fare
