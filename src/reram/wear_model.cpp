#include "reram/wear_model.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "reram/accelerator.hpp"

namespace fare {

namespace {

/// splitmix64 finalizer: the per-cell hash behind every deterministic draw.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Uniform double in (0, 1) — strictly inside so log()/quantile transforms
/// are finite.
double to_unit(std::uint64_t h) {
    return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

}  // namespace

WearModel::WearModel(std::size_t num_crossbars, std::uint16_t rows,
                     std::uint16_t cols, const WearSpec& spec,
                     double sa1_fraction, std::uint64_t seed)
    : spec_(spec),
      sa1_fraction_(sa1_fraction),
      seed_(seed),
      num_crossbars_(num_crossbars),
      rows_(rows),
      cols_(cols) {
    FARE_CHECK(spec.endurance_mean_writes >= 0.0,
               "endurance mean must be non-negative");
    FARE_CHECK(spec.weibull_shape > 0.0, "Weibull shape must be positive");
    FARE_CHECK(spec.hot_spot_fraction >= 0.0 && spec.hot_spot_fraction <= 1.0,
               "hot-spot fraction outside [0,1]");
    FARE_CHECK(spec.hot_spot_severity >= 1.0,
               "hot-spot severity must be >= 1 (an endurance divisor)");
    FARE_CHECK(sa1_fraction >= 0.0 && sa1_fraction <= 1.0,
               "SA1 fraction outside [0,1]");
    if (spec_.enabled()) {
        // Weibull(k, lambda) has mean lambda * Gamma(1 + 1/k); solve for the
        // scale so the configured knob really is the mean lifetime.
        weibull_scale_ = spec_.endurance_mean_writes /
                         std::tgamma(1.0 + 1.0 / spec_.weibull_shape);
        min_lifetime_.assign(num_crossbars_, -1.0);
        worn_.resize(num_crossbars_);
        lifetimes_.resize(num_crossbars_);
    }
}

double WearModel::cell_uniform(std::size_t crossbar, std::uint16_t row,
                               std::uint16_t col, std::uint64_t salt) const {
    std::uint64_t h = mix64(seed_ ^ salt);
    h = mix64(h ^ static_cast<std::uint64_t>(crossbar));
    h = mix64(h ^ (static_cast<std::uint64_t>(row) << 16 | col));
    return to_unit(h);
}

bool WearModel::is_hot_spot(std::size_t crossbar) const {
    if (!enabled() || spec_.hot_spot_fraction <= 0.0) return false;
    const std::uint64_t h =
        mix64(mix64(seed_ ^ 0x407507ULL) ^ static_cast<std::uint64_t>(crossbar));
    return to_unit(h) < spec_.hot_spot_fraction;
}

double WearModel::crossbar_endurance(std::size_t crossbar) const {
    if (!enabled()) return std::numeric_limits<double>::infinity();
    return is_hot_spot(crossbar)
               ? spec_.endurance_mean_writes / spec_.hot_spot_severity
               : spec_.endurance_mean_writes;
}

double WearModel::cell_lifetime(std::size_t crossbar, std::uint16_t row,
                                std::uint16_t col) const {
    if (!enabled()) return std::numeric_limits<double>::infinity();
    // Inverse Weibull CDF: L = lambda * (-ln(1 - u))^(1/k).
    const double u = cell_uniform(crossbar, row, col, 0x11FE71ULL);
    double scale = weibull_scale_;
    if (is_hot_spot(crossbar)) scale /= spec_.hot_spot_severity;
    return scale * std::pow(-std::log1p(-u), 1.0 / spec_.weibull_shape);
}

std::vector<WornCell> WearModel::advance(Accelerator& accelerator) {
    std::vector<WornCell> arrivals;
    if (!enabled()) return arrivals;
    FARE_CHECK(accelerator.num_crossbars() == num_crossbars_,
               "wear model bound to a different chip size");
    const std::size_t cells = static_cast<std::size_t>(rows_) * cols_;
    for (std::size_t x = 0; x < num_crossbars_; ++x) {
        Crossbar& xbar = accelerator.crossbar(x);
        const std::uint64_t max_writes = xbar.max_cell_writes();
        if (max_writes == 0) continue;
        // Cheap skip: no cell of this crossbar can have expired yet.
        if (min_lifetime_[x] >= 0.0 &&
            static_cast<double>(max_writes) < min_lifetime_[x])
            continue;

        auto& worn = worn_[x];
        auto& lifetimes = lifetimes_[x];
        if (worn.empty()) {
            worn.assign(cells, false);
            lifetimes.resize(cells);
            for (std::uint16_t r = 0; r < rows_; ++r)
                for (std::uint16_t c = 0; c < cols_; ++c)
                    lifetimes[static_cast<std::size_t>(r) * cols_ + c] =
                        cell_lifetime(x, r, c);
        }
        double min_alive = std::numeric_limits<double>::infinity();
        const std::size_t first_new = arrivals.size();
        for (std::uint16_t r = 0; r < rows_; ++r) {
            for (std::uint16_t c = 0; c < cols_; ++c) {
                const std::size_t i = static_cast<std::size_t>(r) * cols_ + c;
                if (worn[i]) continue;
                const double lifetime = lifetimes[i];
                const std::uint64_t writes = xbar.writes(r, c);
                if (static_cast<double>(writes) < lifetime) {
                    if (lifetime < min_alive) min_alive = lifetime;
                    continue;
                }
                worn[i] = true;
                ++total_worn_;
                // Already stuck for another reason (manufacturing SAF or an
                // earlier uniform arrival): wearing out changes nothing the
                // sense circuitry can observe, so keep the existing type.
                if (xbar.fault_map().is_faulty(r, c)) continue;
                const FaultType type =
                    cell_uniform(x, r, c, 0x5A1BULL) < sa1_fraction_
                        ? FaultType::kSA1
                        : FaultType::kSA0;
                arrivals.push_back(WornCell{x, CellFault{r, c, type}, writes});
            }
        }
        if (arrivals.size() > first_new) {
            FaultMap map = xbar.fault_map();
            for (std::size_t a = first_new; a < arrivals.size(); ++a)
                map.add(arrivals[a].fault.row, arrivals[a].fault.col,
                        arrivals[a].fault.type);
            xbar.set_fault_map(std::move(map));
        }
        min_lifetime_[x] = min_alive;
    }
    return arrivals;
}

}  // namespace fare
