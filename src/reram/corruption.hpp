// Value-corruption fast path: the effect of stuck cells on stored matrices.
//
// Training applies faults by corrupting the *values* a crossbar would return
// rather than simulating every analog MVM — exactly what the paper's
// PyTorch-on-NeuroSim wrapper does (§V-A). Unit tests assert these functions
// are bit-identical to reading back through reram/mvm_engine.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/quantize.hpp"
#include "reram/fault_model.hpp"

namespace fare {

/// Dense per-cell fault grid covering a (rows x cols*8) cell region that
/// stores a (rows x cols) weight matrix, assembled from per-crossbar fault
/// maps in the same grid layout ProgrammedWeights uses.
class WeightFaultGrid {
public:
    WeightFaultGrid() = default;

    /// Build for a (rows x cols) weight matrix from fault maps of the
    /// row-major crossbar grid (same geometry as ProgrammedWeights).
    WeightFaultGrid(std::size_t rows, std::size_t cols,
                    const std::vector<FaultMap>& grid_maps,
                    std::uint16_t xb_rows = 128, std::uint16_t xb_cols = 128);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return cells_.empty(); }

    /// Fault on slice s (0 = MSB slice) of weight (r, c), if any.
    std::optional<FaultType> slice_fault(std::size_t r, std::size_t c, int s) const;

    /// Faulty weights of one physical row: parallel arrays sorted by weight
    /// column, one entry per weight with at least one faulty cell, each
    /// weight's faulty slices already folded into 16-bit AND/OR masks over
    /// the sign-magnitude cell image (a stuck-at-0 slice clears its two
    /// image bits, stuck-at-1 sets them). Pre-folded, structure-of-arrays:
    /// CompiledFaultOverlay compiles by memcpy-ing the mask arrays and
    /// offsetting the columns — corrupt_weights() compiles an overlay on
    /// every call, so this is on the per-batch path.
    struct RowMasks {
        std::span<const std::uint32_t> cols;       ///< weight columns
        std::span<const std::uint16_t> and_masks;  ///< faulty slices cleared
        std::span<const std::uint16_t> or_masks;   ///< SA1 slices set
    };

    /// Pre-folded mask entries of physical row r. Lets CompiledFaultOverlay
    /// compile in O(faulty weights) instead of scanning the dense
    /// (rows x cols*8) cell grid.
    RowMasks row_mask_list(std::size_t r) const {
        const std::size_t b = row_offsets_[r], n = row_offsets_[r + 1] - b;
        return {{fault_cols_.data() + b, n},
                {fault_and_.data() + b, n},
                {fault_or_.data() + b, n}};
    }

    /// Total faulty cells covering the weight region.
    std::size_t num_faults() const { return num_faults_; }

private:
    std::size_t rows_ = 0, cols_ = 0;
    std::vector<std::uint8_t> cells_;  // (rows x cols*8), 0 = healthy
    // Sparse pre-folded mask index, sorted by (row, weight_col): rows_ + 1
    // offsets into three parallel arrays.
    std::vector<std::size_t> row_offsets_;
    std::vector<std::uint32_t> fault_cols_;
    std::vector<std::uint16_t> fault_and_;
    std::vector<std::uint16_t> fault_or_;
    std::size_t num_faults_ = 0;
};

/// Apply stuck-cell corruption to a single fixed-point value.
std::int16_t corrupt_fixed(std::int16_t q, const WeightFaultGrid& grid, std::size_t r,
                           std::size_t c);

/// Effective weight matrix the tile computes with: quantise -> slice ->
/// stuck-cell overlay -> shift-and-add -> dequantise, then optionally clamp
/// to [-clip, clip] (the 16-bit comparator + 2:1 mux clipping unit).
/// Implemented by compiling a CompiledFaultOverlay on the fly; hot callers
/// that apply the same fault pattern repeatedly (the training loop) should
/// compile once and call CompiledFaultOverlay::apply per batch instead.
Matrix corrupt_weights(const Matrix& w, const WeightFaultGrid& grid,
                       std::optional<float> clip = std::nullopt);

/// Same, but with a logical->physical row permutation applied first (the
/// neuron-reordering baseline moves whole weight rows): logical row r is
/// stored at physical row perm[r].
Matrix corrupt_weights_permuted(const Matrix& w, const WeightFaultGrid& grid,
                                const std::vector<std::uint16_t>& perm,
                                std::optional<float> clip = std::nullopt);

/// Scalar reference implementations (the pre-overlay code path): one checked
/// slice_fault lookup per cell per weight through corrupt_fixed. Kept as the
/// oracle for the overlay-equivalence tests and as the baseline the
/// bench_micro_corruption speedup is measured against. Not for hot loops.
Matrix corrupt_weights_reference(const Matrix& w, const WeightFaultGrid& grid,
                                 std::optional<float> clip = std::nullopt);
Matrix corrupt_weights_permuted_reference(const Matrix& w, const WeightFaultGrid& grid,
                                          const std::vector<std::uint16_t>& perm,
                                          std::optional<float> clip = std::nullopt);

/// Dense binary adjacency block (paper: adjacency is stored 1 bit per cell).
struct BinaryBlock {
    std::uint16_t size = 0;            ///< block is (size x size)
    std::vector<std::uint8_t> bits;    ///< row-major 0/1

    std::uint8_t at(std::uint16_t r, std::uint16_t c) const {
        return bits[static_cast<std::size_t>(r) * size + c];
    }
    void set(std::uint16_t r, std::uint16_t c, std::uint8_t v) {
        bits[static_cast<std::size_t>(r) * size + c] = v;
    }
    /// Fraction of ones (the paper's "edge density" of a block).
    double edge_density() const;
};

/// Effective adjacency block after storing it on a faulty crossbar with
/// logical row r placed at physical row perm[r]: SA1 adds an edge bit, SA0
/// deletes one (paper Fig. 1b).
BinaryBlock corrupt_adjacency_block(const BinaryBlock& block, const FaultMap& map,
                                    const std::vector<std::uint16_t>& perm);

/// Identity permutation of length n.
std::vector<std::uint16_t> identity_perm(std::uint16_t n);

}  // namespace fare
