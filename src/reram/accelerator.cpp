#include "reram/accelerator.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

Accelerator::Accelerator(const AcceleratorConfig& config) : config_(config) {
    FARE_CHECK(config.num_tiles > 0, "accelerator needs at least one tile");
    tiles_.reserve(static_cast<std::size_t>(config.num_tiles));
    for (int i = 0; i < config.num_tiles; ++i) tiles_.emplace_back(config.tile);
}

std::size_t Accelerator::num_crossbars() const {
    return tiles_.size() * static_cast<std::size_t>(config_.tile.crossbars_per_tile);
}

Crossbar& Accelerator::crossbar(std::size_t flat_index) {
    FARE_CHECK(flat_index < num_crossbars(), "crossbar index out of range");
    const auto per_tile = static_cast<std::size_t>(config_.tile.crossbars_per_tile);
    return tiles_[flat_index / per_tile].crossbar(flat_index % per_tile);
}

const Crossbar& Accelerator::crossbar(std::size_t flat_index) const {
    FARE_CHECK(flat_index < num_crossbars(), "crossbar index out of range");
    const auto per_tile = static_cast<std::size_t>(config_.tile.crossbars_per_tile);
    return tiles_[flat_index / per_tile].crossbar(flat_index % per_tile);
}

Tile& Accelerator::tile(std::size_t i) {
    FARE_CHECK(i < tiles_.size(), "tile index out of range");
    return tiles_[i];
}

CrossbarRange Accelerator::allocate(std::size_t count) {
    if (next_free_ + count > num_crossbars())
        throw ResourceError("accelerator out of crossbars: requested " +
                            std::to_string(count) + ", available " +
                            std::to_string(crossbars_available()));
    CrossbarRange range{next_free_, count};
    next_free_ += count;
    return range;
}

std::size_t Accelerator::crossbars_available() const {
    return num_crossbars() - next_free_;
}

void Accelerator::inject_pre_deployment_faults(const FaultInjectionConfig& config) {
    auto maps = inject_faults(num_crossbars(), config_.tile.crossbar_rows,
                              config_.tile.crossbar_cols, config);
    for (std::size_t i = 0; i < maps.size(); ++i)
        crossbar(i).set_fault_map(std::move(maps[i]));
}

std::size_t Accelerator::inject_post_deployment_faults(
    double added_density, double sa1_fraction, Rng& rng,
    std::vector<std::size_t>* touched) {
    std::vector<FaultMap> maps = true_fault_maps();
    const std::size_t added = inject_additional_faults(
        maps, added_density, sa1_fraction, rng, /*soft=*/false, touched);
    for (std::size_t i = 0; i < maps.size(); ++i)
        crossbar(i).set_fault_map(std::move(maps[i]));
    return added;
}

std::size_t Accelerator::inject_soft_faults(double added_density,
                                            double sa1_fraction, Rng& rng,
                                            std::vector<std::size_t>* touched) {
    std::vector<FaultMap> maps = true_fault_maps();
    const std::size_t added = inject_additional_faults(
        maps, added_density, sa1_fraction, rng, /*soft=*/true, touched);
    for (std::size_t i = 0; i < maps.size(); ++i)
        crossbar(i).set_fault_map(std::move(maps[i]));
    return added;
}

std::vector<FaultMap> Accelerator::bist_scan_all() {
    std::vector<FaultMap> maps;
    maps.reserve(num_crossbars());
    for (std::size_t i = 0; i < num_crossbars(); ++i)
        maps.push_back(bist_scan(crossbar(i)).detected);
    return maps;
}

std::vector<FaultMap> Accelerator::true_fault_maps() const {
    std::vector<FaultMap> maps;
    maps.reserve(num_crossbars());
    for (std::size_t i = 0; i < num_crossbars(); ++i)
        maps.push_back(crossbar(i).fault_map());
    return maps;
}

double Accelerator::total_area_mm2() const {
    return config_.tile.area_mm2 * static_cast<double>(tiles_.size());
}

double Accelerator::peak_power_w() const {
    return config_.tile.power_w * static_cast<double>(tiles_.size());
}

}  // namespace fare
