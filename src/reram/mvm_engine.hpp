// Bit-exact matrix-vector multiplication through crossbar-stored weights.
//
// This is the reference model of what the analog tile computes: 16-bit
// fixed-point weights are sliced into 8 cells of 2 bits, distributed across a
// grid of crossbars, read back through the fault overlay, recombined by
// shift-and-add, and multiplied against Q8.8-quantised inputs with integer
// accumulation (paper §III-A, Fig. 1a).
//
// The training loop does NOT run every MVM through this engine — it uses the
// value-corruption fast path in reram/corruption.hpp, which tests assert is
// bit-identical to this engine (DESIGN.md §3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/quantize.hpp"
#include "reram/crossbar.hpp"

namespace fare {

/// A weight matrix programmed onto a private grid of crossbars.
///
/// Layout: weight (r, c) occupies cells (r % xb_rows, (c % wpx) * 8 + s) of
/// grid crossbar (r / xb_rows, c / wpx), where wpx = xb_cols / 8 is the
/// number of weights per crossbar row and s indexes the MSB-first slices.
class ProgrammedWeights {
public:
    /// Create storage for a (rows x cols) weight matrix on crossbars of the
    /// given geometry. xb_cols must be a multiple of kCellsPerWeight.
    ProgrammedWeights(std::size_t rows, std::size_t cols, std::uint16_t xb_rows = 128,
                      std::uint16_t xb_cols = 128);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t num_crossbars() const { return xbars_.size(); }

    /// Grid shape.
    std::size_t grid_rows() const { return grid_rows_; }
    std::size_t grid_cols() const { return grid_cols_; }

    Crossbar& crossbar(std::size_t grid_r, std::size_t grid_c);

    /// Attach fault maps, one per grid crossbar (row-major grid order).
    void set_fault_maps(const std::vector<FaultMap>& maps);

    /// Program all weights (writes every cell; stuck cells ignore writes).
    void program(const FixedMatrix& weights);
    void program(const Matrix& weights);

    /// Read back the effective fixed-point weights (fault overlay applied,
    /// shift-and-add recombination).
    FixedMatrix read_effective() const;

    /// y = x * W_eff with Q8.8 inputs and 64-bit integer accumulation:
    /// x is (batch x rows), result is (batch x cols) in float.
    Matrix mvm(const Matrix& x) const;

private:
    std::size_t rows_, cols_;
    std::uint16_t xb_rows_, xb_cols_;
    std::size_t weights_per_xb_row_;
    std::size_t grid_rows_, grid_cols_;
    std::vector<Crossbar> xbars_;  // row-major grid
};

}  // namespace fare
