#include "reram/fault_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

FaultMap::FaultMap(std::uint16_t rows, std::uint16_t cols)
    : rows_(rows),
      cols_(cols),
      grid_(static_cast<std::size_t>(rows) * cols, 0),
      soft_(static_cast<std::size_t>(rows) * cols, 0) {}

void FaultMap::add(std::uint16_t row, std::uint16_t col, FaultType type,
                   bool soft) {
    FARE_CHECK(row < rows_ && col < cols_, "fault position out of range");
    const std::size_t i = index(row, col);
    auto& cell = grid_[i];
    if (cell == static_cast<std::uint8_t>(FaultType::kSA0)) --num_sa0_;
    if (cell == static_cast<std::uint8_t>(FaultType::kSA1)) --num_sa1_;
    if (soft_[i] != 0) --num_soft_;
    cell = static_cast<std::uint8_t>(type);
    soft_[i] = soft ? 1 : 0;
    if (soft) ++num_soft_;
    if (type == FaultType::kSA0)
        ++num_sa0_;
    else
        ++num_sa1_;
}

void FaultMap::clear(std::uint16_t row, std::uint16_t col) {
    FARE_CHECK(row < rows_ && col < cols_, "fault position out of range");
    const std::size_t i = index(row, col);
    auto& cell = grid_[i];
    if (cell == static_cast<std::uint8_t>(FaultType::kSA0)) --num_sa0_;
    if (cell == static_cast<std::uint8_t>(FaultType::kSA1)) --num_sa1_;
    if (soft_[i] != 0) --num_soft_;
    cell = 0;
    soft_[i] = 0;
}

std::optional<FaultType> FaultMap::at(std::uint16_t row, std::uint16_t col) const {
    FARE_CHECK(row < rows_ && col < cols_, "fault position out of range");
    const auto cell = grid_[index(row, col)];
    if (cell == 0) return std::nullopt;
    return static_cast<FaultType>(cell);
}

std::vector<CellFault> FaultMap::all_faults() const {
    std::vector<CellFault> out;
    out.reserve(num_faults());
    for (std::uint16_t r = 0; r < rows_; ++r)
        for (std::uint16_t c = 0; c < cols_; ++c) {
            const auto cell = grid_[index(r, c)];
            if (cell != 0) out.push_back({r, c, static_cast<FaultType>(cell)});
        }
    return out;
}

std::vector<CellFault> FaultMap::row_faults(std::uint16_t row) const {
    FARE_CHECK(row < rows_, "row out of range");
    std::vector<CellFault> out;
    for (std::uint16_t c = 0; c < cols_; ++c) {
        const auto cell = grid_[index(row, c)];
        if (cell != 0) out.push_back({row, c, static_cast<FaultType>(cell)});
    }
    return out;
}

double FaultMap::fault_density() const {
    if (grid_.empty()) return 0.0;
    return static_cast<double>(num_faults()) / static_cast<double>(grid_.size());
}

std::vector<FaultMap> inject_faults(std::size_t num_crossbars, std::uint16_t rows,
                                    std::uint16_t cols,
                                    const FaultInjectionConfig& config) {
    FARE_CHECK(config.density >= 0.0 && config.density <= 1.0,
               "fault density must lie in [0,1]");
    FARE_CHECK(config.sa1_fraction >= 0.0 && config.sa1_fraction <= 1.0,
               "sa1_fraction must lie in [0,1]");
    Rng rng(config.seed);
    const std::size_t cells = static_cast<std::size_t>(rows) * cols;
    std::vector<FaultMap> maps;
    maps.reserve(num_crossbars);
    for (std::size_t x = 0; x < num_crossbars; ++x) {
        FaultMap map(rows, cols);
        // Clustered fault centres: the per-crossbar Poisson rate is itself
        // Gamma-distributed (mean = density * cells), so a few crossbars
        // absorb most faults while many stay near-clean — the paper's
        // "higher fault density" crossbars (§V-A, citing [6]).
        const double mean = config.density * static_cast<double>(cells);
        double rate = mean;
        if (config.cluster_shape > 0.0 && mean > 0.0)
            rate = rng.next_gamma(config.cluster_shape,
                                  mean / config.cluster_shape);
        std::size_t count = static_cast<std::size_t>(rng.next_poisson(rate));
        count = std::min(count, cells);
        std::size_t placed = 0;
        while (placed < count) {
            const auto r = static_cast<std::uint16_t>(rng.next_below(rows));
            const auto c = static_cast<std::uint16_t>(rng.next_below(cols));
            if (map.is_faulty(r, c)) continue;  // uniform without replacement
            const FaultType t =
                rng.next_bool(config.sa1_fraction) ? FaultType::kSA1 : FaultType::kSA0;
            map.add(r, c, t);
            ++placed;
        }
        maps.push_back(std::move(map));
    }
    return maps;
}

std::size_t inject_additional_faults(std::vector<FaultMap>& maps,
                                     double added_density, double sa1_fraction,
                                     Rng& rng, bool soft,
                                     std::vector<std::size_t>* touched) {
    FARE_CHECK(added_density >= 0.0 && added_density <= 1.0,
               "added density must lie in [0,1]");
    std::size_t total_placed = 0;
    for (std::size_t m = 0; m < maps.size(); ++m) {
        auto& map = maps[m];
        const std::size_t cells =
            static_cast<std::size_t>(map.rows()) * map.cols();
        const double mean = added_density * static_cast<double>(cells);
        std::size_t count = static_cast<std::size_t>(rng.next_poisson(mean));
        count = std::min(count, cells - map.num_faults());
        std::size_t placed = 0;
        std::size_t attempts = 0;
        const std::size_t max_attempts = cells * 4;
        while (placed < count && attempts++ < max_attempts) {
            const auto r = static_cast<std::uint16_t>(rng.next_below(map.rows()));
            const auto c = static_cast<std::uint16_t>(rng.next_below(map.cols()));
            if (map.is_faulty(r, c)) continue;
            const FaultType t =
                rng.next_bool(sa1_fraction) ? FaultType::kSA1 : FaultType::kSA0;
            map.add(r, c, t, soft);
            ++placed;
        }
        if (placed > 0 && touched != nullptr) touched->push_back(m);
        total_placed += placed;
    }
    return total_placed;
}

FaultMap repair_worst_columns(const FaultMap& map, std::size_t num_spares,
                              double sa1_weight) {
    // Rank columns by weighted fault count.
    std::vector<double> column_cost(map.cols(), 0.0);
    for (const CellFault& f : map.all_faults())
        column_cost[f.col] += (f.type == FaultType::kSA1) ? sa1_weight : 1.0;
    std::vector<std::uint16_t> order(map.cols());
    for (std::uint16_t c = 0; c < map.cols(); ++c) order[c] = c;
    std::stable_sort(order.begin(), order.end(), [&](std::uint16_t a, std::uint16_t b) {
        return column_cost[a] > column_cost[b];
    });
    std::vector<bool> repaired(map.cols(), false);
    for (std::size_t i = 0; i < std::min<std::size_t>(num_spares, order.size()); ++i) {
        if (column_cost[order[i]] <= 0.0) break;  // nothing left to repair
        repaired[order[i]] = true;
    }
    FaultMap out(map.rows(), map.cols());
    for (const CellFault& f : map.all_faults())
        if (!repaired[f.col]) out.add(f.row, f.col, f.type);
    return out;
}

double mean_fault_density(const std::vector<FaultMap>& maps) {
    if (maps.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& m : maps) sum += m.fault_density();
    return sum / static_cast<double>(maps.size());
}

}  // namespace fare
