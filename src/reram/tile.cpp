#include "reram/tile.hpp"

#include "common/error.hpp"

namespace fare {

Tile::Tile(const TileSpec& spec) : spec_(spec) {
    FARE_CHECK(spec.crossbars_per_tile > 0, "tile needs at least one crossbar");
    crossbars_.reserve(static_cast<std::size_t>(spec.crossbars_per_tile));
    for (int i = 0; i < spec.crossbars_per_tile; ++i)
        crossbars_.emplace_back(spec.crossbar_rows, spec.crossbar_cols);
}

Crossbar& Tile::crossbar(std::size_t i) {
    FARE_CHECK(i < crossbars_.size(), "crossbar index out of range");
    return crossbars_[i];
}

const Crossbar& Tile::crossbar(std::size_t i) const {
    FARE_CHECK(i < crossbars_.size(), "crossbar index out of range");
    return crossbars_[i];
}

std::uint64_t Tile::total_writes() const {
    std::uint64_t sum = 0;
    for (const auto& xb : crossbars_) sum += xb.total_writes();
    return sum;
}

}  // namespace fare
