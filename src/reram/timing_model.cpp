#include "reram/timing_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/error.hpp"

namespace fare {

const char* scheme_name(Scheme s) {
    switch (s) {
        case Scheme::kFaultFree: return "fault-free";
        case Scheme::kFaultUnaware: return "fault-unaware";
        case Scheme::kNeuronReorder: return "NR";
        case Scheme::kClippingOnly: return "Weight Clipping";
        case Scheme::kFARe: return "FARe";
        case Scheme::kRedundantCols: return "Redundant Columns";
        case Scheme::kOnlineFARe: return "Online FARe";
        case Scheme::kOnlineNaive: return "Online Naive";
    }
    return "?";
}

const std::vector<Scheme>& all_schemes() {
    static const std::vector<Scheme> kSchemes = {
        Scheme::kFaultFree,     Scheme::kFaultUnaware, Scheme::kNeuronReorder,
        Scheme::kClippingOnly,  Scheme::kFARe,         Scheme::kRedundantCols,
        Scheme::kOnlineFARe,    Scheme::kOnlineNaive,
    };
    return kSchemes;
}

Expected<Scheme> parse_scheme(const std::string& name) {
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::replace(lower.begin(), lower.end(), '_', '-');
    std::replace(lower.begin(), lower.end(), ' ', '-');
    if (lower == "fault-free" || lower == "faultfree" || lower == "ideal")
        return Scheme::kFaultFree;
    if (lower == "fault-unaware" || lower == "unaware" || lower == "naive")
        return Scheme::kFaultUnaware;
    if (lower == "nr" || lower == "neuron-reorder" || lower == "neuron-reordering")
        return Scheme::kNeuronReorder;
    if (lower == "weight-clipping" || lower == "clipping" || lower == "clip")
        return Scheme::kClippingOnly;
    if (lower == "fare") return Scheme::kFARe;
    if (lower == "redundant-columns" || lower == "redundant" || lower == "spare")
        return Scheme::kRedundantCols;
    if (lower == "online-fare") return Scheme::kOnlineFARe;
    if (lower == "online-naive" || lower == "online")
        return Scheme::kOnlineNaive;
    return Expected<Scheme>::failure(
        "unknown scheme: '" + name +
        "' (expected fault-free | fault-unaware | NR | clipping | FARe | "
        "redundant-columns | online-FARe | online-naive)");
}

TimingModel::TimingModel(const TimingConfig& config) : config_(config) {
    FARE_CHECK(config.tile.array_clock_hz > 0, "array clock must be positive");
    FARE_CHECK(config.host_ops_per_sec > 0, "host rate must be positive");
}

double TimingModel::crossbar_mvm_latency_s() const {
    // Inputs stream bit-serially through 1-bit DACs: one array cycle per
    // input bit; all crossbars of a tile operate in parallel.
    return static_cast<double>(config_.input_bits) / config_.tile.array_clock_hz;
}

double TimingModel::write_latency_s(std::size_t rows) const {
    return static_cast<double>(rows) / config_.tile.array_clock_hz;
}

double TimingModel::host_matching_latency_s(std::size_t n, double f_per_row) const {
    // b-Suitor visits each candidate edge a constant number of times; the
    // relevant edges are (row, fault-row) pairs with non-zero mismatch, about
    // n * f_per_row, plus the O(n log n) queue maintenance.
    const double edges = static_cast<double>(n) * std::max(f_per_row, 1.0);
    const double ops = 8.0 * edges + 4.0 * static_cast<double>(n) *
                                         std::log2(static_cast<double>(n) + 2.0);
    return ops / config_.host_ops_per_sec;
}

double TimingModel::march_latency_s(std::uint64_t cell_ops) const {
    // A march pass programs/reads whole rows at a time: cell_ops spread over
    // the column width, one array cycle per row operation.
    const double row_ops = static_cast<double>(cell_ops) /
                           static_cast<double>(config_.tile.crossbar_cols);
    return row_ops / config_.tile.array_clock_hz;
}

double TimingModel::readback_latency_s(std::size_t crossbars) const {
    // One signature MVM wave per crossbar plus a host compare of the
    // column-sum vector against the stored golden value.
    const double host_ops = static_cast<double>(config_.tile.crossbar_cols);
    return static_cast<double>(crossbars) *
           (crossbar_mvm_latency_s() + host_ops / config_.host_ops_per_sec);
}

double TimingModel::reprogram_latency_s(std::uint64_t pulses) const {
    return static_cast<double>(pulses) / config_.tile.array_clock_hz;
}

double TimingModel::noc_transfer_latency_s(std::size_t blocks) const {
    if (blocks == 0) return 0.0;
    // Each off-home block ships one crossbar-row vector of 16-bit partial
    // sums per mapping use: rows x 2 bytes, plus the fixed routing latency.
    const double bytes_per_block =
        static_cast<double>(config_.tile.crossbar_rows) * 2.0;
    return static_cast<double>(blocks) *
           (config_.noc_hop_latency_s + bytes_per_block / config_.noc_bytes_per_sec);
}

double TimingModel::stage_delay_s(const WorkloadTiming& w) const {
    const auto xb_rows = static_cast<std::size_t>(config_.tile.crossbar_rows);
    const auto weights_per_row =
        static_cast<std::size_t>(config_.tile.crossbar_cols) / 8;  // 8 cells/weight

    // Aggregation: (B x B) adjacency times (B x F) features. The B-wide input
    // enters bit-serially; ceil(B/128) crossbar row-groups work in parallel
    // inside a tile, so the wavefront is one MVM wave per feature column
    // group of the (B x F) operand.
    const std::size_t agg_waves =
        (w.features + weights_per_row - 1) / weights_per_row;
    const double t_agg = static_cast<double>(agg_waves) * crossbar_mvm_latency_s();

    // Combination: (B x F) times (F x H): one wave per 128-row input group
    // per output group of H.
    const std::size_t comb_in_groups = (w.features + xb_rows - 1) / xb_rows;
    const std::size_t comb_out_groups =
        (w.hidden + weights_per_row - 1) / weights_per_row;
    const double t_comb = static_cast<double>(comb_in_groups * comb_out_groups) *
                          crossbar_mvm_latency_s();

    // Weight update: rewrite all weight rows in place.
    const double t_update = write_latency_s(w.weight_rows_total);

    return std::max({t_agg, t_comb, t_update});
}

std::size_t TimingModel::num_stages(const WorkloadTiming& w, bool with_clipping) const {
    // Per layer: aggregation + combination; plus loss/gradient stage and
    // weight-update stage; clipping adds one comparator/mux stage (§V-E).
    return 2 * w.layers + 2 + (with_clipping ? 1 : 0);
}

ExecutionBreakdown TimingModel::training_time(Scheme scheme,
                                              const WorkloadTiming& w) const {
    ExecutionBreakdown out;
    const double stage = stage_delay_s(w);
    const bool clipping = scheme == Scheme::kClippingOnly ||
                          scheme == Scheme::kFARe ||
                          scheme == Scheme::kOnlineFARe;
    const std::size_t stages = num_stages(w, clipping);
    const std::size_t total_batches = w.batches_per_epoch * w.epochs;

    out.pipeline =
        static_cast<double>(total_batches + stages - 1) * stage;

    if (scheme == Scheme::kRedundantCols) {
        // Column-repair indirection sits in the sense path of every wave.
        out.pipeline *= 1.10;
    }

    if (scheme == Scheme::kNeuronReorder) {
        // Per-batch stall: re-match the reorder units against the fault map
        // on the just-updated weights, then reprogram the physically moved
        // rows. The matching instance has one vertex per reorder unit
        // (dimension hidden; each unit spans 8 cells, which is the per-edge
        // mismatch-evaluation work folded into f_per_row), and the rewrite
        // touches every weight row (paper §V-E: the pipeline stalls after
        // every batch).
        const double t_match = host_matching_latency_s(w.hidden, 8.0);
        const double t_rewrite = write_latency_s(w.weight_rows_total);
        out.stalls = static_cast<double>(total_batches) * (t_match + t_rewrite);
    }

    if (scheme == Scheme::kOnlineNaive) {
        // The rotating partial march replaces the per-epoch full scan; its
        // steady-state duty cycle is the same order as FARe's BIST refresh.
        // The *measured* march/readback/reprogram time of a concrete run is
        // charged separately through SchemeRunResult::online.
        out.bist = config_.bist_epoch_overhead * out.pipeline;
    }

    if (scheme == Scheme::kFARe || scheme == Scheme::kOnlineFARe) {
        // Preprocessing on the critical path: only the FIRST batch's mapping
        // — subsequent batches are mapped on the host while the pipeline
        // executes the current one (paper §IV-A: "generates the mapping for
        // the next batch parallelly on the host device"). Per block, a cheap
        // O(m) fault-count preselection prunes the pool to a handful of
        // candidate crossbars that get full b-Suitor row matching.
        const auto xb = static_cast<std::size_t>(config_.tile.crossbar_rows);
        const std::size_t grid = (w.avg_batch_nodes + xb - 1) / xb;
        const std::size_t blocks_per_batch = grid * grid;
        const std::size_t candidates_per_block = 4;
        const double preselect = 96.0 / config_.host_ops_per_sec;  // count scan
        const double per_pair = host_matching_latency_s(xb, 8.0);
        out.preprocess =
            static_cast<double>(blocks_per_batch) *
            (preselect + static_cast<double>(candidates_per_block) * per_pair);
        // Per-epoch BIST refresh for post-deployment faults (~0.13%/epoch).
        out.bist = config_.bist_epoch_overhead * out.pipeline;
    }
    return out;
}

double TimingModel::normalized_time(Scheme scheme, const WorkloadTiming& w) const {
    const double base = training_time(Scheme::kFaultFree, w).total();
    return training_time(scheme, w).total() / base;
}

EnergyBreakdown TimingModel::training_energy(Scheme scheme,
                                             const WorkloadTiming& w) const {
    EnergyBreakdown out;
    const auto xb_rows = static_cast<std::size_t>(config_.tile.crossbar_rows);
    const auto weights_per_row =
        static_cast<std::size_t>(config_.tile.crossbar_cols) / 8;
    const std::size_t total_batches = w.batches_per_epoch * w.epochs;

    // Compute: aggregation + combination MVM waves per batch (see
    // stage_delay_s for the wavefront counts), ADC samples per wave.
    const std::size_t agg_waves = (w.features + weights_per_row - 1) / weights_per_row;
    const std::size_t comb_waves = ((w.features + xb_rows - 1) / xb_rows) *
                                   ((w.hidden + weights_per_row - 1) / weights_per_row);
    const double waves_per_batch =
        static_cast<double>((agg_waves + comb_waves) * w.layers);
    const double adc_per_wave = static_cast<double>(config_.tile.num_adcs);
    out.compute = static_cast<double>(total_batches) * waves_per_batch *
                  (config_.mvm_energy_per_wave_j +
                   adc_per_wave * config_.adc_energy_per_sample_j);

    // Writes: adjacency blocks streamed per batch + weight rows updated.
    const std::size_t grid = (w.avg_batch_nodes + xb_rows - 1) / xb_rows;
    const double adj_cells_per_batch =
        static_cast<double>(grid * grid) * static_cast<double>(xb_rows) *
        static_cast<double>(config_.tile.crossbar_cols);
    const double weight_cells_per_batch =
        static_cast<double>(w.weight_rows_total) *
        static_cast<double>(config_.tile.crossbar_cols);
    out.writes = static_cast<double>(total_batches) *
                 (adj_cells_per_batch + weight_cells_per_batch) *
                 config_.write_energy_per_cell_j;

    // Host energy: mapping (FARe, first batch on the critical path but every
    // batch is mapped somewhere) or per-batch reorder (NR).
    const double per_pair_ops =
        host_matching_latency_s(xb_rows, 8.0) * config_.host_ops_per_sec;
    if (scheme == Scheme::kFARe || scheme == Scheme::kOnlineFARe) {
        const double pairs =
            static_cast<double>(w.batches_per_epoch) *
            static_cast<double>(grid * grid) * 4.0;  // pruned candidates
        out.host = pairs * per_pair_ops * config_.host_energy_per_op_j;
        out.overhead = config_.bist_epoch_overhead *
                       training_time(scheme, w).pipeline / 1.0 *
                       config_.tile.power_w;  // BIST runtime at tile power
    } else if (scheme == Scheme::kNeuronReorder) {
        const double match_ops = host_matching_latency_s(w.hidden, 8.0) *
                                 config_.host_ops_per_sec;
        out.host = static_cast<double>(total_batches) * match_ops *
                   config_.host_energy_per_op_j;
        // Reorder rewrites every weight row each batch — extra write energy.
        out.writes += static_cast<double>(total_batches) * weight_cells_per_batch *
                      config_.write_energy_per_cell_j;
    } else if (scheme == Scheme::kRedundantCols) {
        // Spare columns are active in every wave: compute/write energy scale
        // with the provisioned redundancy.
        out.compute *= 1.0 + config_.spare_column_fraction;
        out.writes *= 1.0 + config_.spare_column_fraction;
    }
    return out;
}

double TimingModel::normalized_energy(Scheme scheme, const WorkloadTiming& w) const {
    const double base = training_energy(Scheme::kFaultFree, w).total();
    return training_energy(scheme, w).total() / base;
}

}  // namespace fare
