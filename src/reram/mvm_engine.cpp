#include "reram/mvm_engine.hpp"

#include "common/error.hpp"

namespace fare {

ProgrammedWeights::ProgrammedWeights(std::size_t rows, std::size_t cols,
                                     std::uint16_t xb_rows, std::uint16_t xb_cols)
    : rows_(rows), cols_(cols), xb_rows_(xb_rows), xb_cols_(xb_cols) {
    FARE_CHECK(rows > 0 && cols > 0, "weight matrix must be non-empty");
    FARE_CHECK(xb_cols % kCellsPerWeight == 0,
               "crossbar width must hold whole weights");
    weights_per_xb_row_ = static_cast<std::size_t>(xb_cols) / kCellsPerWeight;
    grid_rows_ = (rows + xb_rows - 1) / xb_rows;
    grid_cols_ = (cols + weights_per_xb_row_ - 1) / weights_per_xb_row_;
    xbars_.reserve(grid_rows_ * grid_cols_);
    for (std::size_t i = 0; i < grid_rows_ * grid_cols_; ++i)
        xbars_.emplace_back(xb_rows_, xb_cols_);
}

Crossbar& ProgrammedWeights::crossbar(std::size_t grid_r, std::size_t grid_c) {
    FARE_CHECK(grid_r < grid_rows_ && grid_c < grid_cols_, "grid index out of range");
    return xbars_[grid_r * grid_cols_ + grid_c];
}

void ProgrammedWeights::set_fault_maps(const std::vector<FaultMap>& maps) {
    FARE_CHECK(maps.size() == xbars_.size(), "need one fault map per crossbar");
    for (std::size_t i = 0; i < maps.size(); ++i) xbars_[i].set_fault_map(maps[i]);
}

void ProgrammedWeights::program(const FixedMatrix& weights) {
    FARE_CHECK(weights.rows == rows_ && weights.cols == cols_,
               "programmed shape mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::size_t gr = r / xb_rows_;
        const auto xr = static_cast<std::uint16_t>(r % xb_rows_);
        for (std::size_t c = 0; c < cols_; ++c) {
            const std::size_t gc = c / weights_per_xb_row_;
            const std::size_t wslot = c % weights_per_xb_row_;
            auto& xb = xbars_[gr * grid_cols_ + gc];
            const CellSlices slices = slice_fixed(weights.at(r, c));
            for (int s = 0; s < kCellsPerWeight; ++s) {
                const auto xc = static_cast<std::uint16_t>(
                    wslot * kCellsPerWeight + static_cast<std::size_t>(s));
                xb.program(xr, xc, slices[static_cast<std::size_t>(s)]);
            }
        }
    }
}

void ProgrammedWeights::program(const Matrix& weights) {
    program(quantize(weights));
}

FixedMatrix ProgrammedWeights::read_effective() const {
    FixedMatrix out;
    out.rows = rows_;
    out.cols = cols_;
    out.data.resize(rows_ * cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::size_t gr = r / xb_rows_;
        const auto xr = static_cast<std::uint16_t>(r % xb_rows_);
        for (std::size_t c = 0; c < cols_; ++c) {
            const std::size_t gc = c / weights_per_xb_row_;
            const std::size_t wslot = c % weights_per_xb_row_;
            const auto& xb = xbars_[gr * grid_cols_ + gc];
            CellSlices slices{};
            for (int s = 0; s < kCellsPerWeight; ++s) {
                const auto xc = static_cast<std::uint16_t>(
                    wslot * kCellsPerWeight + static_cast<std::size_t>(s));
                slices[static_cast<std::size_t>(s)] = xb.read(xr, xc);
            }
            out.at(r, c) = unslice_fixed(slices);  // shift-and-add
        }
    }
    return out;
}

Matrix ProgrammedWeights::mvm(const Matrix& x) const {
    FARE_CHECK(x.cols() == rows_, "mvm input width mismatch");
    const FixedMatrix w_eff = read_effective();
    Matrix y(x.rows(), cols_);
    // Q8.8 x Q8.8 -> Q16.16 accumulation in int64; scale back once.
    const double scale = 1.0 / static_cast<double>(1 << (2 * kFixedFractionBits));
    for (std::size_t b = 0; b < x.rows(); ++b) {
        auto xrow = x.row(b);
        for (std::size_t c = 0; c < cols_; ++c) {
            std::int64_t acc = 0;
            for (std::size_t r = 0; r < rows_; ++r) {
                const std::int64_t xq = float_to_fixed(xrow[r]);
                acc += xq * static_cast<std::int64_t>(w_eff.at(r, c));
            }
            y(b, c) = static_cast<float>(static_cast<double>(acc) * scale);
        }
    }
    return y;
}

}  // namespace fare
