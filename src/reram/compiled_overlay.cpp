#include "reram/compiled_overlay.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "numeric/fixed_point.hpp"

namespace fare {

CompiledFaultOverlay::CompiledFaultOverlay(const WeightFaultGrid& grid,
                                           std::size_t rows, std::size_t cols,
                                           std::span<const std::uint16_t> perm)
    : rows_(rows), cols_(cols) {
    FARE_CHECK(grid.rows() >= rows && grid.cols() == cols,
               "fault grid does not cover weight matrix");
    FARE_CHECK(perm.empty() || perm.size() == rows, "permutation size mismatch");

    // O(faults): walk each mapped physical row's sparse fault list (sorted by
    // weight column, then slice) and fold every faulty weight's slices into
    // one mask pair. At most one entry per faulty cell, usually fewer.
    entries_.reserve(grid.num_faults());
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t pr = perm.empty() ? r : perm[r];
        FARE_CHECK(pr < grid.rows(), "permutation target out of range");
        const auto faults = grid.row_fault_list(pr);
        for (std::size_t i = 0; i < faults.size();) {
            const std::uint32_t weight_c = faults[i].weight_col;
            std::uint16_t and_mask = 0xFFFFu, or_mask = 0;
            do {
                const int shift =
                    kFixedTotalBits - kBitsPerCell * (faults[i].slice + 1);
                const auto bits = static_cast<std::uint16_t>(0x3u << shift);
                and_mask = static_cast<std::uint16_t>(and_mask & ~bits);
                if (static_cast<FaultType>(faults[i].type) == FaultType::kSA1)
                    or_mask = static_cast<std::uint16_t>(or_mask | bits);
                ++i;
            } while (i < faults.size() && faults[i].weight_col == weight_c);
            entries_.push_back({static_cast<std::uint32_t>(r * cols + weight_c),
                                and_mask, or_mask});
        }
    }
}

Matrix CompiledFaultOverlay::apply(const Matrix& w,
                                   std::optional<float> clip) const {
    FARE_CHECK(compiled(), "overlay not compiled");
    FARE_CHECK(w.rows() == rows_ && w.cols() == cols_,
               "overlay geometry does not match weight matrix");
    Matrix out = Matrix::uninitialized(w.rows(), w.cols());
    const float* __restrict src = w.flat().data();
    float* __restrict dst = out.flat().data();
    const std::size_t n = w.size();

    if (!clip.has_value()) {
        // Dense pass: the fault-free quantise -> dequantise round trip.
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = fixed_to_float(float_to_fixed(src[i]));
        // Sparse branchless fix-up at the faulty entries only.
        for (const MaskEntry& e : entries_) {
            FARE_DCHECK(e.index < n, "overlay entry out of range");
            const std::uint16_t image =
                fixed_to_cell_image(float_to_fixed(src[e.index]));
            const auto fixed =
                static_cast<std::uint16_t>((image & e.and_mask) | e.or_mask);
            dst[e.index] = fixed_to_float(cell_image_to_fixed(fixed));
        }
        return out;
    }

    // Same two passes with the clipping unit fused in (identical result to
    // corrupt-then-clamp: the fix-up re-clamps the entries it rewrites).
    const float hi = *clip, lo = -hi;
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::clamp(fixed_to_float(float_to_fixed(src[i])), lo, hi);
    for (const MaskEntry& e : entries_) {
        FARE_DCHECK(e.index < n, "overlay entry out of range");
        const std::uint16_t image = fixed_to_cell_image(float_to_fixed(src[e.index]));
        const auto fixed =
            static_cast<std::uint16_t>((image & e.and_mask) | e.or_mask);
        dst[e.index] = std::clamp(fixed_to_float(cell_image_to_fixed(fixed)), lo, hi);
    }
    return out;
}

}  // namespace fare
