#include "reram/compiled_overlay.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "numeric/fixed_point.hpp"

namespace fare {

CompiledFaultOverlay::CompiledFaultOverlay(const WeightFaultGrid& grid,
                                           std::size_t rows, std::size_t cols,
                                           std::span<const std::uint16_t> perm)
    : rows_(rows), cols_(cols) {
    FARE_CHECK(grid.rows() >= rows && grid.cols() == cols,
               "fault grid does not cover weight matrix");
    FARE_CHECK(perm.empty() || perm.size() == rows, "permutation size mismatch");

    // O(faulty weights): the grid pre-folded each faulty weight's slices
    // into one AND/OR mask pair per row, so compiling is copying the mask
    // arrays and offsetting the weight columns to flat indices. Sized up
    // front — corrupt_weights() compiles per call, so reallocation here
    // would be on the per-batch path.
    std::size_t total = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t pr = perm.empty() ? r : perm[r];
        FARE_CHECK(pr < grid.rows(), "permutation target out of range");
        total += grid.row_mask_list(pr).cols.size();
    }
    idx_.resize(total);
    and_.resize(total);
    or_.resize(total);
    std::size_t pos = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t pr = perm.empty() ? r : perm[r];
        const WeightFaultGrid::RowMasks faults = grid.row_mask_list(pr);
        const std::size_t n = faults.cols.size();
        if (n == 0) continue;
        const std::uint32_t base = static_cast<std::uint32_t>(r * cols);
        for (std::size_t i = 0; i < n; ++i)
            idx_[pos + i] = base + faults.cols[i];
        std::memcpy(and_.data() + pos, faults.and_masks.data(),
                    n * sizeof(std::uint16_t));
        std::memcpy(or_.data() + pos, faults.or_masks.data(),
                    n * sizeof(std::uint16_t));
        pos += n;
    }
}

Matrix CompiledFaultOverlay::apply(const Matrix& w,
                                   std::optional<float> clip) const {
    FARE_CHECK(compiled(), "overlay not compiled");
    FARE_CHECK(w.rows() == rows_ && w.cols() == cols_,
               "overlay geometry does not match weight matrix");
    Matrix out = Matrix::uninitialized(w.rows(), w.cols());
    const float* src = w.flat().data();
    float* dst = out.flat().data();
    const std::size_t n = w.size();
    const simd::SimdKernels& k = simd::kernels();

    if (!clip.has_value()) {
        // Dense fault-free quantise -> dequantise pass, then the branchless
        // image' = (image & and) | or fix-up at the faulty entries only.
        k.quantize_dequantize(src, dst, n);
        k.overlay_fixup(src, dst, idx_.data(), and_.data(), or_.data(),
                        idx_.size());
        return out;
    }

    // Same two passes with the clipping unit fused in (identical result to
    // corrupt-then-clamp: the fix-up re-clamps the entries it rewrites).
    k.quantize_dequantize_clip(src, dst, n, *clip);
    k.overlay_fixup_clip(src, dst, idx_.data(), and_.data(), or_.data(),
                         idx_.size(), *clip);
    return out;
}

}  // namespace fare
