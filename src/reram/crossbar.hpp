// Functional model of one ReRAM crossbar array.
//
// Cells store `kBitsPerCell`-bit conductance levels (Table III: 2-bit/cell).
// Programming a faulty cell silently has no effect — reads return the stuck
// level: SA0 reads 0 (high-resistance state), SA1 reads the maximum level
// (low-resistance state).
//
// Write endurance is tracked *per cell* so the WearModel
// (reram/wear_model.hpp) can convert accumulated writes into
// endurance-driven stuck-at arrivals: program()/program_row() count one
// write per touched cell, and add_uniform_writes() charges a whole-array
// reprogram (the per-step weight/adjacency rewrite of the training loop) in
// O(1) via a shared base counter instead of touching every cell.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "numeric/fixed_point.hpp"
#include "reram/fault_model.hpp"

namespace fare {

class Crossbar {
public:
    Crossbar(std::uint16_t rows, std::uint16_t cols);

    std::uint16_t rows() const { return rows_; }
    std::uint16_t cols() const { return cols_; }

    /// Attach / replace the fault overlay (e.g. after wear).
    void set_fault_map(FaultMap map);
    const FaultMap& fault_map() const { return faults_; }

    /// Program one cell with a 2-bit level. Counts one write; stuck cells
    /// ignore the write.
    void program(std::uint16_t row, std::uint16_t col, std::uint8_t level);

    /// Program an entire row of levels (vector width = cols).
    void program_row(std::uint16_t row, const std::vector<std::uint8_t>& levels);

    /// Effective level seen by the sense circuitry (fault overlay applied).
    std::uint8_t read(std::uint16_t row, std::uint16_t col) const;

    /// Pristine stored level ignoring faults (test/debug only — real hardware
    /// cannot observe this).
    std::uint8_t stored(std::uint16_t row, std::uint16_t col) const;

    /// Apply `pulses` re-forming program pulses to a cell: each pulse counts
    /// as one write (repair itself causes wear). A *soft* stuck-at clears;
    /// a hard fault survives the pulse train. Returns true iff the cell is
    /// healthy afterwards.
    bool reform(std::uint16_t row, std::uint16_t col, std::uint32_t pulses);

    /// Charge `count` array-level writes: every cell's endurance counter
    /// advances by `count` without changing stored levels. O(1) — this is
    /// the per-training-step accounting hook (the functional simulator does
    /// not re-program crossbars cell by cell in the hot loop).
    void add_uniform_writes(std::uint64_t count) { uniform_writes_ += count; }

    /// Accumulated writes of one cell: per-cell program() writes plus the
    /// array-level uniform charge. Monotonically non-decreasing.
    std::uint64_t writes(std::uint16_t row, std::uint16_t col) const {
        FARE_DCHECK(row < rows_ && col < cols_, "write-count position out of range");
        return uniform_writes_ + cell_writes_[index(row, col)];
    }

    /// Array-level write charge shared by every cell.
    std::uint64_t uniform_writes() const { return uniform_writes_; }

    /// Upper bound on any single cell's writes() — used by the WearModel to
    /// skip scanning crossbars that cannot have reached any lifetime yet.
    std::uint64_t max_cell_writes() const {
        return uniform_writes_ + max_cell_extra_;
    }

    /// Total cell-write operations since construction (endurance
    /// accounting): per-cell program() writes plus uniform charges applied
    /// to every cell of the array.
    std::uint64_t total_writes() const {
        return writes_ + uniform_writes_ * static_cast<std::uint64_t>(cells_.size());
    }

    /// Maximum programmable level for the cell resolution (3 for 2-bit).
    static constexpr std::uint8_t max_level() {
        return static_cast<std::uint8_t>((1u << kBitsPerCell) - 1u);
    }

private:
    std::size_t index(std::uint16_t r, std::uint16_t c) const {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    std::uint16_t rows_;
    std::uint16_t cols_;
    std::vector<std::uint8_t> cells_;
    std::vector<std::uint32_t> cell_writes_;  // per-cell program() writes
    FaultMap faults_;
    std::uint64_t writes_ = 0;          // program() call count
    std::uint64_t uniform_writes_ = 0;  // array-level charges (per cell)
    std::uint32_t max_cell_extra_ = 0;  // max of cell_writes_
};

}  // namespace fare
