// Functional model of one ReRAM crossbar array.
//
// Cells store `kBitsPerCell`-bit conductance levels (Table III: 2-bit/cell).
// Programming a faulty cell silently has no effect — reads return the stuck
// level: SA0 reads 0 (high-resistance state), SA1 reads the maximum level
// (low-resistance state). Write endurance is tracked per cell-write so the
// accelerator can account for wear-induced post-deployment faults.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/fixed_point.hpp"
#include "reram/fault_model.hpp"

namespace fare {

class Crossbar {
public:
    Crossbar(std::uint16_t rows, std::uint16_t cols);

    std::uint16_t rows() const { return rows_; }
    std::uint16_t cols() const { return cols_; }

    /// Attach / replace the fault overlay (e.g. after wear).
    void set_fault_map(FaultMap map);
    const FaultMap& fault_map() const { return faults_; }

    /// Program one cell with a 2-bit level. Counts one write; stuck cells
    /// ignore the write.
    void program(std::uint16_t row, std::uint16_t col, std::uint8_t level);

    /// Program an entire row of levels (vector width = cols).
    void program_row(std::uint16_t row, const std::vector<std::uint8_t>& levels);

    /// Effective level seen by the sense circuitry (fault overlay applied).
    std::uint8_t read(std::uint16_t row, std::uint16_t col) const;

    /// Pristine stored level ignoring faults (test/debug only — real hardware
    /// cannot observe this).
    std::uint8_t stored(std::uint16_t row, std::uint16_t col) const;

    /// Total cell writes since construction (endurance accounting).
    std::uint64_t total_writes() const { return writes_; }

    /// Maximum programmable level for the cell resolution (3 for 2-bit).
    static constexpr std::uint8_t max_level() {
        return static_cast<std::uint8_t>((1u << kBitsPerCell) - 1u);
    }

private:
    std::size_t index(std::uint16_t r, std::uint16_t c) const {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    std::uint16_t rows_;
    std::uint16_t cols_;
    std::vector<std::uint8_t> cells_;
    FaultMap faults_;
    std::uint64_t writes_ = 0;
};

}  // namespace fare
