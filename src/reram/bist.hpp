// Built-in self-test (BIST) for SAF detection.
//
// Paper §II-A / §IV-A: a BIST circuit identifies the type and location of
// stuck-at faults; FARe enables it pre-deployment and at each epoch boundary
// to refresh the fault map, at ~0.13% area and timing overhead. We model the
// standard two-pass March-style test: write all-0 / read (cells reading
// non-zero are SA1), write all-max / read (cells reading below max are SA0).
// Original cell contents are restored afterwards.
#pragma once

#include "reram/crossbar.hpp"

namespace fare {

struct BistResult {
    FaultMap detected;
    /// Cell operations performed (2 writes + 2 reads per cell + restore),
    /// consumed by the timing model's overhead accounting.
    std::uint64_t cell_ops = 0;
};

/// Scan one crossbar and return the detected fault map.
/// Postcondition: the crossbar's stored contents are unchanged.
BistResult bist_scan(Crossbar& xbar);

}  // namespace fare
