// Compiled fault overlay: the stuck-cell effect of a WeightFaultGrid (plus an
// optional logical->physical row permutation) folded into per-weight 16-bit
// AND/OR masks over the sign-magnitude cell image, with a sparse index of the
// weights that have any faulty cell at all.
//
// Motivation (hot-loop economics): the training loop re-derives effective
// weights on every batch, but the *fault pattern* only changes at epoch
// boundaries (BIST rescan after wear, re-permutation). Compiling the pattern
// once turns per-batch corruption into one vectorisable quantise->dequantise
// (+clip) pass over all weights plus a branchless
//
//     image' = (image & and_mask) | or_mask
//
// fix-up applied only at the faulty entries — at the paper's densities well
// under 15% of weights are touched. Bit-identical to corrupt_fixed() (and
// therefore to the mvm_engine readback path): a stuck-at-0 slice clears its
// two image bits (AND), a stuck-at-1 slice sets them (OR); the masks are the
// composition of all eight slices' effects.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "numeric/matrix.hpp"
#include "reram/corruption.hpp"

namespace fare {

class CompiledFaultOverlay {
public:
    CompiledFaultOverlay() = default;

    /// Compile the overlay for a (rows x cols) logical weight matrix stored
    /// on `grid`, with logical row r placed at physical row perm[r]. An empty
    /// perm means identity placement (the no-permutation fast path — nothing
    /// is allocated per call). Grid coverage and permutation targets are
    /// validated here, once, instead of per weight per batch.
    CompiledFaultOverlay(const WeightFaultGrid& grid, std::size_t rows,
                         std::size_t cols,
                         std::span<const std::uint16_t> perm = {});

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool compiled() const { return rows_ != 0; }
    /// Number of weights with at least one faulty cell.
    std::size_t num_faulty_weights() const { return idx_.size(); }

    /// Effective weights: quantise -> dequantise every entry, apply the
    /// masked fix-up at the faulty entries, then optionally clamp everything
    /// to [-clip, clip]. Bit-identical to corrupt_weights_permuted_reference
    /// (and the ProgrammedWeights::read_effective readback). Both passes run
    /// through the runtime-dispatched SIMD kernel table (common/simd.hpp).
    Matrix apply(const Matrix& w, std::optional<float> clip = std::nullopt) const;

private:
    // Structure-of-arrays so the SIMD fix-up kernel streams indices and
    // masks with plain vector loads; sorted by index, one entry per faulty
    // weight. The masks themselves are pre-folded by WeightFaultGrid —
    // compiling here is concatenation plus the row -> flat-index offset.
    std::size_t rows_ = 0, cols_ = 0;
    std::vector<std::uint32_t> idx_;   ///< flat r * cols + c into the matrix
    std::vector<std::uint16_t> and_;   ///< faulty slices cleared
    std::vector<std::uint16_t> or_;    ///< SA1 slices set
};

}  // namespace fare
