// Online soft-error detection & correction for ReRAM crossbars.
//
// FARe tolerates faults by retraining *around* them; this subsystem instead
// detects and repairs faults *during* training (arXiv:2412.03089's online
// tolerance, plus redundant-mapping ideas from arXiv:2106.09166):
//
//   DetectionPolicy — every `detect_period_batches` training steps, a
//   partial BIST march covers a rotating window of `march_window` in-use
//   crossbars; every other in-use crossbar gets a cheap error-bounded
//   readback check (one MVM signature wave compared against the digital
//   golden value) that escalates to a targeted march when the relative
//   signature error exceeds `readback_tolerance`.
//
//   CorrectionPolicy — cells the march flags are re-programmed with
//   `reprogram_pulses` forming pulses (clears *soft* stuck-ats; each pulse
//   counts as a write, so repair itself causes wear). Columns with surviving
//   hard faults are substituted by per-crossbar spare columns through a
//   logical->physical column map (`spare_columns` per crossbar, assumed
//   fault-free). When spares run out the crossbar is marked exhausted and
//   degrades gracefully to fault-aware remap: the residual faults stay
//   visible to the mapper/overlay instead of crashing the run.
//
// Every decision is a pure function of the engine's inputs (crossbar state,
// step numbers, spec) — no wall-clock, no unordered iteration — so detection
// and repair logs are byte-identical across Inline, Pool and Remote
// executors. Costs are charged through TimingModel (march/readback/reprogram
// latency) and the per-cell write counters (WearModel wear).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "reram/accelerator.hpp"

namespace fare {

/// Knobs of the online detection/correction policy. Stored in
/// HardwareOverrides; participates in cell keys only when enabled so legacy
/// cache keys stay byte-stable.
struct OnlinePolicySpec {
    /// Run a detection round every this many training steps (0 = disabled).
    std::size_t detect_period_batches = 0;
    /// Crossbars marched per round by the rotating partial BIST window.
    std::size_t march_window = 8;
    /// Relative MVM-signature error that escalates a readback check to a
    /// targeted march of that crossbar.
    double readback_tolerance = 0.02;
    /// Spare columns provisioned per crossbar for substitution repair.
    std::size_t spare_columns = 4;
    /// Re-forming program pulses applied per flagged cell.
    std::uint32_t reprogram_pulses = 3;

    bool enabled() const { return detect_period_batches > 0; }
};

/// Cost/effect log of the online engine over one training run. Serialized in
/// CellResult (schema v3); byte-identical across executors for a given spec.
struct OnlineToleranceStats {
    std::uint64_t detection_rounds = 0;
    std::uint64_t march_cell_ops = 0;   ///< BIST cell operations performed
    std::uint64_t readback_checks = 0;  ///< signature checks performed
    std::uint64_t faults_detected = 0;  ///< distinct faulty cells flagged
    std::uint64_t soft_repaired = 0;    ///< soft stuck-ats cleared by re-form
    std::uint64_t repair_writes = 0;    ///< program pulses spent on repair
    std::uint64_t columns_substituted = 0;
    std::uint64_t crossbars_exhausted = 0;  ///< spares used up, degraded to remap
    /// Detection latency: sum/count of (march step - arrival step) over
    /// crossbars whose new faults a round flagged.
    std::uint64_t latency_steps_sum = 0;
    std::uint64_t latency_samples = 0;
    /// Modeled time charged by the hardware model (TimingModel march /
    /// readback / reprogram latencies).
    double detect_seconds = 0.0;
    double repair_seconds = 0.0;

    double mean_detection_latency_steps() const {
        if (latency_samples == 0) return 0.0;
        return static_cast<double>(latency_steps_sum) /
               static_cast<double>(latency_samples);
    }
};

/// What one detection round did — the caller converts the op counts into
/// seconds via TimingModel and refreshes its mitigation state iff
/// `state_changed`.
struct OnlineRoundOutcome {
    std::uint64_t march_cell_ops = 0;
    std::size_t readback_checks = 0;
    std::uint64_t repair_pulses = 0;
    /// A re-form, substitution or newly detected fault changed the effective
    /// fault view.
    bool state_changed = false;
};

class OnlineToleranceEngine {
public:
    OnlineToleranceEngine() = default;
    explicit OnlineToleranceEngine(const OnlinePolicySpec& spec) : spec_(spec) {}

    const OnlinePolicySpec& spec() const { return spec_; }
    const OnlineToleranceStats& stats() const { return stats_; }

    /// Arrival bookkeeping: the crossbars in `touched` received new faults at
    /// global training step `step` (detection-latency denominator).
    void note_arrivals(std::uint64_t step,
                      const std::vector<std::size_t>& touched);

    /// Run one detection round at global step `step` over the in-use
    /// crossbars (deterministic: rotating window + sorted escalations).
    OnlineRoundOutcome detection_round(std::uint64_t step, Accelerator& accel,
                                       const std::vector<std::size_t>& in_use);

    /// Mitigation view of a crossbar: faults on substituted columns are
    /// routed to (assumed fault-free) spare columns and dropped from the map.
    FaultMap repaired_map(std::size_t crossbar_index,
                          const FaultMap& truth) const;

    bool exhausted(std::size_t crossbar_index) const;
    std::size_t spares_used(std::size_t crossbar_index) const;

    /// Hardware model accumulates modeled seconds into the stats log.
    void charge_seconds(double detect_s, double repair_s) {
        stats_.detect_seconds += detect_s;
        stats_.repair_seconds += repair_s;
    }

private:
    struct CrossbarRepair {
        std::set<std::uint16_t> substituted;  ///< logical columns on spares
        bool exhausted = false;  ///< hard faults remain but spares are gone
    };

    /// Targeted march + repair of one crossbar.
    void repair_crossbar(std::uint64_t step, Accelerator& accel,
                         std::size_t xb, OnlineRoundOutcome& outcome);

    /// Relative |read - stored| signature error against the fault-adjusted
    /// golden value: substituted columns and already-known faults are
    /// excluded, so only *unknown* damage escalates to a march.
    double signature_error(const Crossbar& xbar, const CrossbarRepair* repair,
                           const std::set<std::uint32_t>* known) const;

    OnlinePolicySpec spec_;
    OnlineToleranceStats stats_;
    std::size_t cursor_ = 0;  ///< rotating march window position
    std::map<std::size_t, CrossbarRepair> repairs_;
    /// Crossbar -> earliest un-marched arrival step (latency bookkeeping).
    std::map<std::size_t, std::uint64_t> pending_arrivals_;
    /// Faults already counted in stats_.faults_detected, per crossbar
    /// (encoded row<<16|col); re-forms remove entries so a re-failed cell
    /// counts again.
    std::map<std::size_t, std::set<std::uint32_t>> known_;
};

}  // namespace fare
