// Analytical timing / energy / area model — the repo's NeuroSim stand-in.
//
// Reproduces the first-order quantities Fig. 7 depends on:
//   * pipelined training time  T = (N + S - 1) * stage_delay   (paper §V-E)
//     with N pipeline inputs (subgraph batches) and S stages;
//   * weight clipping adds one pipeline stage (comparator + mux), negligible
//     because N >> S;
//   * FARe adds one-time host preprocessing (the bipartite mapping) plus a
//     per-epoch BIST scan (~0.13% each);
//   * neuron reordering (NR) stalls the pipeline after every batch: the
//     reorder is recomputed on the *updated* weights (host matching over the
//     hidden_dim x 8-cell reorder unit) and the physically moved rows must be
//     reprogrammed before the next batch can enter.
//
// All latencies derive from Table III device parameters; host costs from an
// effective ops/s rate. Absolute values are a model; Fig. 7 reports ratios.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "reram/tile.hpp"

namespace fare {

/// Fault-mitigation scheme being timed / trained.
enum class Scheme {
    kFaultFree,      ///< ideal crossbars (quantisation only)
    kFaultUnaware,   ///< naive mapping, no mitigation
    kNeuronReorder,  ///< NR [7]: row-granularity reordering, SA0 = SA1
    kClippingOnly,   ///< weight clipping [12] alone
    kFARe,           ///< Algorithm 1 mapping + clipping (the paper)
    kRedundantCols,  ///< hardware redundancy [8]: spare columns repair faults
    kOnlineFARe,     ///< FARe mapping + online detection/correction engine
    kOnlineNaive,    ///< online detection/correction only (naive mapping)
};

const char* scheme_name(Scheme s);

/// Every scheme, in enum order — the registry view used by `fare-run --list`
/// and sweeps that want "all of them" without hand-maintaining a list.
const std::vector<Scheme>& all_schemes();

/// Schemes that run the in-training detection/correction engine
/// (reram/online_tolerance.hpp).
inline bool scheme_is_online(Scheme s) {
    return s == Scheme::kOnlineFARe || s == Scheme::kOnlineNaive;
}

/// Parse a scheme by its scheme_name() spelling or a CLI-friendly alias
/// ("fare", "nr", "clipping", "unaware", "redundant", "fault-free"),
/// case-insensitive. A miss returns a structured error listing the options.
Expected<Scheme> parse_scheme(const std::string& name);

/// Static description of one training workload (per dataset/model).
struct WorkloadTiming {
    std::size_t batches_per_epoch = 50;
    std::size_t epochs = 100;
    std::size_t avg_batch_nodes = 240;  ///< nodes per subgraph batch
    std::size_t features = 32;          ///< input feature width
    std::size_t hidden = 32;            ///< hidden width (reorder unit = hidden x 8)
    std::size_t layers = 2;
    /// Total physical weight-cell rows across all layers (rewritten by NR).
    std::size_t weight_rows_total = 64;
};

struct TimingConfig {
    TileSpec tile;
    /// Bit-serial input resolution (16-bit fixed-point activations).
    int input_bits = 16;
    /// Effective host throughput for the matching computations (ops/s).
    double host_ops_per_sec = 5e8;
    /// Fractional overhead of one BIST scan relative to an epoch (paper: 0.13%).
    double bist_epoch_overhead = 0.0013;
    /// Redundant-column repair [8]: fraction of extra crossbar columns kept
    /// as spares (area/energy overhead of the hardware baseline).
    double spare_column_fraction = 0.15;

    // NoC (inter-tile) transfer model: a block whose home tile differs from
    // the tile its crossbar landed on ships its partial aggregation results
    // across the mesh once per epoch-equivalent mapping use. First-order:
    // per-block payload = crossbar_rows x 16-bit partials.
    double noc_bytes_per_sec = 2e9;   ///< mesh link effective bandwidth
    double noc_hop_latency_s = 50e-9; ///< per-transfer fixed routing latency

    // Energy coefficients (first-order): the per-wave MVM energy is
    // calibrated against Table III — one tile at 0.34 W running a 512 us
    // pipeline stage of ~700 waves spends ~240 nJ per wave; writes and ADC
    // samples use NeuroSim-order per-op values.
    double mvm_energy_per_wave_j = 200e-9;  ///< 128x128 wave, 16-bit inputs
    double write_energy_per_cell_j = 1e-12; ///< one 2-bit cell program
    double adc_energy_per_sample_j = 2e-12;
    double host_energy_per_op_j = 10e-12;
};

/// Decomposed execution time, all in seconds.
struct ExecutionBreakdown {
    double preprocess = 0.0;  ///< host mapping before training (FARe)
    double pipeline = 0.0;    ///< (N + S - 1) * stage_delay
    double stalls = 0.0;      ///< NR per-batch reorder + reprogram stalls
    double bist = 0.0;        ///< per-epoch BIST scans
    double total() const { return preprocess + pipeline + stalls + bist; }
};

/// Decomposed training energy, all in joules.
struct EnergyBreakdown {
    double compute = 0.0;   ///< analog MVM waves + ADC conversions
    double writes = 0.0;    ///< adjacency streaming + weight updates
    double host = 0.0;      ///< mapping / reorder computations on the host
    double overhead = 0.0;  ///< BIST scans, spare-column repair energy
    double total() const { return compute + writes + host + overhead; }
};

class TimingModel {
public:
    explicit TimingModel(const TimingConfig& config = {});

    const TimingConfig& config() const { return config_; }

    /// One crossbar MVM wave: bit-serial over input_bits array cycles.
    double crossbar_mvm_latency_s() const;

    /// Programming `rows` crossbar rows (one array cycle per row).
    double write_latency_s(std::size_t rows) const;

    /// Host bipartite-matching cost for an n x n cost instance with ~f
    /// relevant fault entries per row (b-Suitor is near-linear in edges).
    double host_matching_latency_s(std::size_t n, double f_per_row) const;

    // --- Online-tolerance cost hooks (reram/online_tolerance.hpp) ---

    /// March over crossbar cells: `cell_ops` BIST cell operations, executed
    /// row-parallel across the array columns (one array cycle per row pass).
    double march_latency_s(std::uint64_t cell_ops) const;

    /// Error-bounded readback check of `crossbars` arrays: one MVM signature
    /// wave each plus the host-side compare against the digital golden value.
    double readback_latency_s(std::size_t crossbars) const;

    /// Targeted re-programming: `pulses` single-cell program pulses.
    double reprogram_latency_s(std::uint64_t pulses) const;

    /// Inter-tile NoC cost of shipping `blocks` off-home-tile partial
    /// aggregation payloads (one crossbar's worth of 16-bit partial sums
    /// each) across the mesh. Partition-aware mapping exists to shrink this.
    double noc_transfer_latency_s(std::size_t blocks) const;

    /// Delay of one pipeline stage for a workload: max over the aggregation
    /// MVM wavefront, the combination MVM wavefront and the weight update
    /// write-back.
    double stage_delay_s(const WorkloadTiming& w) const;

    /// Number of pipeline stages (aggregation + combination per layer,
    /// plus loss and weight-update stages, plus one clipping stage if used).
    std::size_t num_stages(const WorkloadTiming& w, bool with_clipping) const;

    /// End-to-end training time under a scheme.
    ExecutionBreakdown training_time(Scheme scheme, const WorkloadTiming& w) const;

    /// Convenience: time of `scheme` divided by fault-free time.
    double normalized_time(Scheme scheme, const WorkloadTiming& w) const;

    /// End-to-end training energy under a scheme (first-order model:
    /// MVM waves + ADC samples + cell writes + host computation + BIST /
    /// spare-column overheads).
    EnergyBreakdown training_energy(Scheme scheme, const WorkloadTiming& w) const;

    /// Convenience: energy of `scheme` divided by fault-free energy.
    double normalized_energy(Scheme scheme, const WorkloadTiming& w) const;

private:
    TimingConfig config_;
};

}  // namespace fare
