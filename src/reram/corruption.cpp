#include "reram/corruption.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "reram/compiled_overlay.hpp"

namespace fare {

WeightFaultGrid::WeightFaultGrid(std::size_t rows, std::size_t cols,
                                 const std::vector<FaultMap>& grid_maps,
                                 std::uint16_t xb_rows, std::uint16_t xb_cols)
    : rows_(rows), cols_(cols) {
    FARE_CHECK(xb_cols % kCellsPerWeight == 0,
               "crossbar width must hold whole weights");
    const std::size_t wpx = static_cast<std::size_t>(xb_cols) / kCellsPerWeight;
    const std::size_t grid_rows = (rows + xb_rows - 1) / xb_rows;
    const std::size_t grid_cols = (cols + wpx - 1) / wpx;
    FARE_CHECK(grid_maps.size() == grid_rows * grid_cols,
               "need one fault map per grid crossbar");

    const std::size_t cell_cols = cols * static_cast<std::size_t>(kCellsPerWeight);
    cells_.assign(rows * cell_cols, 0);
    // (physical row, fault) pairs in (grid row, grid col, map row, map col)
    // order; the stable counting sort below groups them per row while keeping
    // each row's (weight_col, slice) ascending.
    std::vector<std::pair<std::uint32_t, SliceFault>> collected;
    for (std::size_t gr = 0; gr < grid_rows; ++gr) {
        for (std::size_t gc = 0; gc < grid_cols; ++gc) {
            const auto& map = grid_maps[gr * grid_cols + gc];
            FARE_CHECK(map.rows() == xb_rows && map.cols() == xb_cols,
                       "fault map geometry mismatch");
            for (const CellFault& f : map.all_faults()) {
                const std::size_t r = gr * xb_rows + f.row;
                if (r >= rows) continue;
                const std::size_t weight_c = gc * wpx + f.col / kCellsPerWeight;
                if (weight_c >= cols) continue;
                const std::size_t s = f.col % kCellsPerWeight;
                cells_[r * cell_cols + weight_c * kCellsPerWeight + s] =
                    static_cast<std::uint8_t>(f.type);
                ++num_faults_;
                collected.push_back(
                    {static_cast<std::uint32_t>(r),
                     SliceFault{static_cast<std::uint32_t>(weight_c),
                                static_cast<std::uint8_t>(s),
                                static_cast<std::uint8_t>(f.type)}});
            }
        }
    }
    row_offsets_.assign(rows + 1, 0);
    for (const auto& [r, f] : collected) ++row_offsets_[r + 1];
    for (std::size_t r = 0; r < rows; ++r) row_offsets_[r + 1] += row_offsets_[r];
    sparse_.resize(collected.size());
    std::vector<std::size_t> cursor(row_offsets_.begin(), row_offsets_.end() - 1);
    for (const auto& [r, f] : collected) sparse_[cursor[r]++] = f;
}

std::optional<FaultType> WeightFaultGrid::slice_fault(std::size_t r, std::size_t c,
                                                      int s) const {
    FARE_CHECK(r < rows_ && c < cols_ && s >= 0 && s < kCellsPerWeight,
               "slice_fault index out of range");
    const std::size_t cell_cols = cols_ * static_cast<std::size_t>(kCellsPerWeight);
    const auto v = cells_[r * cell_cols + c * kCellsPerWeight + static_cast<std::size_t>(s)];
    if (v == 0) return std::nullopt;
    return static_cast<FaultType>(v);
}

std::int16_t corrupt_fixed(std::int16_t q, const WeightFaultGrid& grid, std::size_t r,
                           std::size_t c) {
    CellSlices slices = slice_fixed(q);
    for (int s = 0; s < kCellsPerWeight; ++s) {
        const auto fault = grid.slice_fault(r, c, s);
        if (!fault.has_value()) continue;
        slices[static_cast<std::size_t>(s)] =
            (*fault == FaultType::kSA0) ? 0 : 0x3;
    }
    return unslice_fixed(slices);
}

Matrix corrupt_weights(const Matrix& w, const WeightFaultGrid& grid,
                       std::optional<float> clip) {
    // No-permutation fast path: identity placement is the overlay default, so
    // no identity_perm vector is materialised per call.
    return CompiledFaultOverlay(grid, w.rows(), w.cols()).apply(w, clip);
}

Matrix corrupt_weights_permuted(const Matrix& w, const WeightFaultGrid& grid,
                                const std::vector<std::uint16_t>& perm,
                                std::optional<float> clip) {
    FARE_CHECK(perm.size() == w.rows(), "permutation size mismatch");
    return CompiledFaultOverlay(grid, w.rows(), w.cols(), perm).apply(w, clip);
}

Matrix corrupt_weights_reference(const Matrix& w, const WeightFaultGrid& grid,
                                 std::optional<float> clip) {
    return corrupt_weights_permuted_reference(
        w, grid, identity_perm(static_cast<std::uint16_t>(w.rows())), clip);
}

Matrix corrupt_weights_permuted_reference(const Matrix& w, const WeightFaultGrid& grid,
                                          const std::vector<std::uint16_t>& perm,
                                          std::optional<float> clip) {
    FARE_CHECK(grid.rows() >= w.rows() && grid.cols() == w.cols(),
               "fault grid does not cover weight matrix");
    FARE_CHECK(perm.size() == w.rows(), "permutation size mismatch");
    Matrix out(w.rows(), w.cols());
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const std::size_t pr = perm[r];
        FARE_CHECK(pr < grid.rows(), "permutation target out of range");
        for (std::size_t c = 0; c < w.cols(); ++c) {
            const std::int16_t q = float_to_fixed(w(r, c));
            float v = fixed_to_float(corrupt_fixed(q, grid, pr, c));
            if (clip.has_value()) v = std::clamp(v, -*clip, *clip);
            out(r, c) = v;
        }
    }
    return out;
}

double BinaryBlock::edge_density() const {
    if (bits.empty()) return 0.0;
    std::size_t ones = 0;
    for (auto b : bits) ones += b;
    return static_cast<double>(ones) / static_cast<double>(bits.size());
}

BinaryBlock corrupt_adjacency_block(const BinaryBlock& block, const FaultMap& map,
                                    const std::vector<std::uint16_t>& perm) {
    FARE_CHECK(map.rows() >= block.size && map.cols() >= block.size,
               "fault map smaller than block");
    FARE_CHECK(perm.size() == block.size, "permutation size mismatch");
    BinaryBlock out = block;
    for (std::uint16_t r = 0; r < block.size; ++r) {
        const std::uint16_t pr = perm[r];
        for (std::uint16_t c = 0; c < block.size; ++c) {
            const auto fault = map.at(pr, c);
            if (!fault.has_value()) continue;
            out.set(r, c, *fault == FaultType::kSA0 ? 0 : 1);
        }
    }
    return out;
}

std::vector<std::uint16_t> identity_perm(std::uint16_t n) {
    std::vector<std::uint16_t> perm(n);
    for (std::uint16_t i = 0; i < n; ++i) perm[i] = i;
    return perm;
}

}  // namespace fare
