#include "reram/corruption.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "reram/compiled_overlay.hpp"

namespace fare {

WeightFaultGrid::WeightFaultGrid(std::size_t rows, std::size_t cols,
                                 const std::vector<FaultMap>& grid_maps,
                                 std::uint16_t xb_rows, std::uint16_t xb_cols)
    : rows_(rows), cols_(cols) {
    FARE_CHECK(xb_cols % kCellsPerWeight == 0,
               "crossbar width must hold whole weights");
    const std::size_t wpx = static_cast<std::size_t>(xb_cols) / kCellsPerWeight;
    const std::size_t grid_rows = (rows + xb_rows - 1) / xb_rows;
    const std::size_t grid_cols = (cols + wpx - 1) / wpx;
    FARE_CHECK(grid_maps.size() == grid_rows * grid_cols,
               "need one fault map per grid crossbar");

    const std::size_t cell_cols = cols * static_cast<std::size_t>(kCellsPerWeight);
    cells_.assign(rows * cell_cols, 0);
    // (physical row, weight col, slice, type) in (grid row, grid col, map
    // row, map col) order; the stable counting sort below groups them per
    // row while keeping each row's (weight_col, slice) ascending.
    struct Collected {
        std::uint32_t row;
        std::uint32_t weight_col;
        std::uint8_t slice;
        std::uint8_t type;
    };
    std::vector<Collected> collected;
    for (std::size_t gr = 0; gr < grid_rows; ++gr) {
        for (std::size_t gc = 0; gc < grid_cols; ++gc) {
            const auto& map = grid_maps[gr * grid_cols + gc];
            FARE_CHECK(map.rows() == xb_rows && map.cols() == xb_cols,
                       "fault map geometry mismatch");
            for (const CellFault& f : map.all_faults()) {
                const std::size_t r = gr * xb_rows + f.row;
                if (r >= rows) continue;
                const std::size_t weight_c = gc * wpx + f.col / kCellsPerWeight;
                if (weight_c >= cols) continue;
                const std::size_t s = f.col % kCellsPerWeight;
                cells_[r * cell_cols + weight_c * kCellsPerWeight + s] =
                    static_cast<std::uint8_t>(f.type);
                ++num_faults_;
                collected.push_back({static_cast<std::uint32_t>(r),
                                     static_cast<std::uint32_t>(weight_c),
                                     static_cast<std::uint8_t>(s),
                                     static_cast<std::uint8_t>(f.type)});
            }
        }
    }
    std::vector<std::size_t> counts(rows + 1, 0);
    for (const Collected& f : collected) ++counts[f.row + 1];
    for (std::size_t r = 0; r < rows; ++r) counts[r + 1] += counts[r];
    std::vector<Collected> sorted(collected.size());
    std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
    for (const Collected& f : collected) sorted[cursor[f.row]++] = f;

    // Fold each faulty weight's slices (adjacent after the sort) into one
    // AND/OR mask pair over the sign-magnitude cell image.
    row_offsets_.assign(rows + 1, 0);
    fault_cols_.reserve(collected.size());
    fault_and_.reserve(collected.size());
    fault_or_.reserve(collected.size());
    for (std::size_t i = 0; i < sorted.size();) {
        const std::uint32_t r = sorted[i].row;
        const std::uint32_t weight_c = sorted[i].weight_col;
        std::uint16_t and_mask = 0xFFFFu, or_mask = 0;
        do {
            const int shift = kFixedTotalBits - kBitsPerCell * (sorted[i].slice + 1);
            const auto bits = static_cast<std::uint16_t>(0x3u << shift);
            and_mask = static_cast<std::uint16_t>(and_mask & ~bits);
            if (static_cast<FaultType>(sorted[i].type) == FaultType::kSA1)
                or_mask = static_cast<std::uint16_t>(or_mask | bits);
            ++i;
        } while (i < sorted.size() && sorted[i].row == r &&
                 sorted[i].weight_col == weight_c);
        fault_cols_.push_back(weight_c);
        fault_and_.push_back(and_mask);
        fault_or_.push_back(or_mask);
        ++row_offsets_[r + 1];
    }
    for (std::size_t r = 0; r < rows; ++r) row_offsets_[r + 1] += row_offsets_[r];
}

std::optional<FaultType> WeightFaultGrid::slice_fault(std::size_t r, std::size_t c,
                                                      int s) const {
    FARE_CHECK(r < rows_ && c < cols_ && s >= 0 && s < kCellsPerWeight,
               "slice_fault index out of range");
    const std::size_t cell_cols = cols_ * static_cast<std::size_t>(kCellsPerWeight);
    const auto v = cells_[r * cell_cols + c * kCellsPerWeight + static_cast<std::size_t>(s)];
    if (v == 0) return std::nullopt;
    return static_cast<FaultType>(v);
}

std::int16_t corrupt_fixed(std::int16_t q, const WeightFaultGrid& grid, std::size_t r,
                           std::size_t c) {
    CellSlices slices = slice_fixed(q);
    for (int s = 0; s < kCellsPerWeight; ++s) {
        const auto fault = grid.slice_fault(r, c, s);
        if (!fault.has_value()) continue;
        slices[static_cast<std::size_t>(s)] =
            (*fault == FaultType::kSA0) ? 0 : 0x3;
    }
    return unslice_fixed(slices);
}

Matrix corrupt_weights(const Matrix& w, const WeightFaultGrid& grid,
                       std::optional<float> clip) {
    // No-permutation fast path: identity placement is the overlay default, so
    // no identity_perm vector is materialised per call.
    return CompiledFaultOverlay(grid, w.rows(), w.cols()).apply(w, clip);
}

Matrix corrupt_weights_permuted(const Matrix& w, const WeightFaultGrid& grid,
                                const std::vector<std::uint16_t>& perm,
                                std::optional<float> clip) {
    FARE_CHECK(perm.size() == w.rows(), "permutation size mismatch");
    return CompiledFaultOverlay(grid, w.rows(), w.cols(), perm).apply(w, clip);
}

Matrix corrupt_weights_reference(const Matrix& w, const WeightFaultGrid& grid,
                                 std::optional<float> clip) {
    return corrupt_weights_permuted_reference(
        w, grid, identity_perm(static_cast<std::uint16_t>(w.rows())), clip);
}

Matrix corrupt_weights_permuted_reference(const Matrix& w, const WeightFaultGrid& grid,
                                          const std::vector<std::uint16_t>& perm,
                                          std::optional<float> clip) {
    FARE_CHECK(grid.rows() >= w.rows() && grid.cols() == w.cols(),
               "fault grid does not cover weight matrix");
    FARE_CHECK(perm.size() == w.rows(), "permutation size mismatch");
    Matrix out(w.rows(), w.cols());
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const std::size_t pr = perm[r];
        FARE_CHECK(pr < grid.rows(), "permutation target out of range");
        for (std::size_t c = 0; c < w.cols(); ++c) {
            const std::int16_t q = float_to_fixed(w(r, c));
            float v = fixed_to_float(corrupt_fixed(q, grid, pr, c));
            if (clip.has_value()) v = std::clamp(v, -*clip, *clip);
            out(r, c) = v;
        }
    }
    return out;
}

double BinaryBlock::edge_density() const {
    if (bits.empty()) return 0.0;
    std::size_t ones = 0;
    for (auto b : bits) ones += b;
    return static_cast<double>(ones) / static_cast<double>(bits.size());
}

BinaryBlock corrupt_adjacency_block(const BinaryBlock& block, const FaultMap& map,
                                    const std::vector<std::uint16_t>& perm) {
    FARE_CHECK(map.rows() >= block.size && map.cols() >= block.size,
               "fault map smaller than block");
    FARE_CHECK(perm.size() == block.size, "permutation size mismatch");
    BinaryBlock out = block;
    for (std::uint16_t r = 0; r < block.size; ++r) {
        const std::uint16_t pr = perm[r];
        for (std::uint16_t c = 0; c < block.size; ++c) {
            const auto fault = map.at(pr, c);
            if (!fault.has_value()) continue;
            out.set(r, c, *fault == FaultType::kSA0 ? 0 : 1);
        }
    }
    return out;
}

std::vector<std::uint16_t> identity_perm(std::uint16_t n) {
    std::vector<std::uint16_t> perm(n);
    for (std::uint16_t i = 0; i < n; ++i) perm[i] = i;
    return perm;
}

}  // namespace fare
