// Endurance-driven wear model: write counts -> stuck-at arrivals.
//
// Real ReRAM cells survive a finite number of SET/RESET cycles; worn-out
// cells get stuck, and wear-out clusters into per-crossbar hot spots
// ("Hamun", arXiv:2502.01502). This module converts the per-cell write
// counts the Crossbar tracks (reram/crossbar.hpp) into fault arrivals:
//
//   * every cell draws a Weibull-distributed write lifetime, seeded
//     deterministically per (seed, crossbar, row, col) — the same seed
//     always yields the same lifetimes, independent of scan order, thread
//     count or sharding;
//   * a configurable fraction of crossbars are endurance hot spots whose
//     lifetimes are divided by `hot_spot_severity` (process variation:
//     weak crossbars wear out first and collect clustered faults);
//   * advance() scans for cells whose accumulated writes crossed their
//     lifetime since the last call and pins them in the crossbar fault
//     maps as stuck-at faults (polarity drawn per cell from sa1_fraction).
//
// The model never un-fails a cell and never reports the same cell twice, so
// callers can refresh BIST images / compiled overlays exactly when advance()
// returns a non-zero arrival count.
#pragma once

#include <cstdint>
#include <vector>

#include "reram/fault_model.hpp"

namespace fare {

class Accelerator;

/// Scenario-level wear description (embedded in FaultScenario; the
/// hardware seed and stuck-at polarity ratio arrive separately through
/// FaultyHardwareConfig).
struct WearSpec {
    /// Mean writes-to-failure of a healthy cell; 0 disables wear entirely.
    double endurance_mean_writes = 0.0;
    /// Weibull shape k of the lifetime distribution (k = 2: gentle early
    /// spread; large k: near-deterministic wear-out at the mean).
    double weibull_shape = 2.0;
    /// Fraction of crossbars that are endurance hot spots in [0,1].
    double hot_spot_fraction = 0.0;
    /// Endurance divisor inside a hot spot (> 1: hot spots die sooner).
    double hot_spot_severity = 8.0;
    /// Array-level writes charged per training step (one optimizer step
    /// rewrites the weight regions and streams the batch's adjacency
    /// blocks; scale this to model finer write granularity).
    std::uint64_t writes_per_step = 1;

    bool enabled() const { return endurance_mean_writes > 0.0; }
};

/// One endurance-driven arrival reported by WearModel::advance().
struct WornCell {
    std::size_t crossbar = 0;
    CellFault fault;
    std::uint64_t at_writes = 0;  ///< the cell's write count when it expired
};

class WearModel {
public:
    /// Disabled model: advance() is a no-op. Keeps FaultyHardware free of
    /// null checks.
    WearModel() = default;

    /// `sa1_fraction` sets the stuck polarity of worn-out cells; `seed`
    /// drives every per-cell draw (lifetime, hot-spot membership,
    /// polarity).
    WearModel(std::size_t num_crossbars, std::uint16_t rows, std::uint16_t cols,
              const WearSpec& spec, double sa1_fraction, std::uint64_t seed);

    bool enabled() const { return spec_.enabled(); }
    const WearSpec& spec() const { return spec_; }

    /// Deterministic hot-spot membership of a crossbar.
    bool is_hot_spot(std::size_t crossbar) const;
    /// Mean writes-to-failure for cells of a crossbar (endurance_mean
    /// divided by hot_spot_severity inside hot spots).
    double crossbar_endurance(std::size_t crossbar) const;
    /// The cell's Weibull lifetime draw — a pure function of
    /// (seed, crossbar, row, col), stable across calls and processes.
    double cell_lifetime(std::size_t crossbar, std::uint16_t row,
                         std::uint16_t col) const;

    /// Scan the accelerator's crossbars for cells whose accumulated writes
    /// crossed their lifetime since the last advance, pin each as a
    /// stuck-at fault in its crossbar's fault map, and report the new
    /// arrivals (crossbar-major, row-major — deterministic). Cells already
    /// faulty for another reason (e.g. manufacturing SAFs) are marked worn
    /// but keep their existing fault type.
    std::vector<WornCell> advance(Accelerator& accelerator);

    /// Cells worn out across all advance() calls.
    std::size_t total_worn() const { return total_worn_; }

private:
    /// Deterministic uniform draw in (0,1) for a cell-level decision.
    double cell_uniform(std::size_t crossbar, std::uint16_t row,
                        std::uint16_t col, std::uint64_t salt) const;

    WearSpec spec_;
    double sa1_fraction_ = 0.1;
    std::uint64_t seed_ = 1;
    std::size_t num_crossbars_ = 0;
    std::uint16_t rows_ = 0;
    std::uint16_t cols_ = 0;
    double weibull_scale_ = 0.0;  ///< lambda such that mean == endurance_mean

    /// Per-crossbar minimum unexpired lifetime: advance() skips crossbars
    /// whose write counters cannot have crossed any lifetime yet. Negative
    /// while not yet computed for that crossbar.
    std::vector<double> min_lifetime_;
    /// Per-crossbar worn-cell mask, allocated lazily on first arrival scan.
    std::vector<std::vector<bool>> worn_;
    /// Per-crossbar lifetime cache (same lazy lifecycle as worn_): the
    /// draws are pure functions, but recomputing hash + log + pow for every
    /// cell on every checkpoint scan would put transcendental math back in
    /// the training hot loop.
    std::vector<std::vector<double>> lifetimes_;
    std::size_t total_worn_ = 0;
};

}  // namespace fare
