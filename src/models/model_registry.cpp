// Model-family registry implementation (interface: nn/model_family.hpp).
// Registration is a static list, mirroring the partitioner registry: adding
// a family means adding one entry here.
#include "nn/model_family.hpp"

#include <sstream>

#include "models/gnn/gnn_family.hpp"
#include "models/transformer/transformer_family.hpp"
#include "sim/registry.hpp"

namespace fare {

const std::vector<const ModelFamily*>& registered_model_families() {
    static const GnnFamily gnn;
    static const TransformerFamily transformer;
    static const std::vector<const ModelFamily*> families = {&gnn, &transformer};
    return families;
}

Expected<const ModelFamily*> try_find_model_family(const std::string& name) {
    for (const ModelFamily* fam : registered_model_families())
        if (fam->name() == name) return fam;
    std::ostringstream os;
    os << "unknown model family: '" << name << "' — registered families:";
    for (const ModelFamily* fam : registered_model_families())
        os << ' ' << fam->name();
    return Expected<const ModelFamily*>::failure(os.str());
}

const ModelFamily& find_model_family(const std::string& name) {
    auto result = try_find_model_family(name);
    if (!result) throw InvalidArgument(result.error());
    return *result.value();
}

std::string model_family_usage() {
    std::ostringstream os;
    for (const ModelFamily* fam : registered_model_families()) {
        os << "  " << fam->name() << ':';
        for (const auto& w : fam->workloads()) os << ' ' << w.label();
        os << '\n';
    }
    return os.str();
}

}  // namespace fare
