// Sparse view of one batch's (possibly fault-corrupted) adjacency, carrying
// the normalisations each GNN layer type needs.
//
// The view is built from the *effective* adjacency bits — i.e. after FARe /
// baseline mapping and stuck-at corruption — so edge insertions (SA1) and
// deletions (SA0) propagate into aggregation exactly as on the hardware.
// Corrupted adjacency is generally asymmetric (a fault flips one cell, not
// its mirror), so the view keeps explicit transpose structure for backward.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/bitmatrix.hpp"
#include "numeric/matrix.hpp"

namespace fare {

class BatchGraphView {
public:
    BatchGraphView() = default;

    /// Build from effective adjacency bits. Self-loops are always added
    /// (GNN aggregation uses A + I).
    static BatchGraphView from_bits(const BitMatrix& adj);

    /// Fault-free fast path straight from CSR (no dense materialisation).
    static BatchGraphView from_graph(const CSRGraph& g);

    std::size_t num_nodes() const { return n_; }
    std::size_t num_entries() const { return cols_.size(); }

    /// Neighbour structure (self-loops included) for attention layers.
    std::span<const std::uint32_t> row_neighbors(std::size_t r) const {
        return {cols_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
    }
    std::span<const std::size_t> offsets() const { return offsets_; }

    /// Y = A_gcn * X where A_gcn = D_out^-1/2 (A + I) D_in^-1/2.
    Matrix gcn_multiply(const Matrix& x) const;
    /// Y = A_gcn^T * X (backward).
    Matrix gcn_multiply_t(const Matrix& x) const;

    /// Y = A_mean * X where A_mean = D_out^-1 (A + I) (row-mean aggregation).
    Matrix mean_multiply(const Matrix& x) const;
    /// Y = A_mean^T * X (backward).
    Matrix mean_multiply_t(const Matrix& x) const;

private:
    // Both aggregation directions are row-parallel over the common/parallel
    // pool: forward gathers per output row through the CSR structure,
    // backward gathers per output row through the precomputed transpose
    // index (instead of scattering, which would race). Accumulation order
    // per output row is ascending source row either way, so threaded
    // results are bit-identical to serial.
    Matrix multiply(const std::vector<float>& vals, const Matrix& x) const;
    Matrix multiply_t(const std::vector<float>& vals, const Matrix& x) const;
    void finalize();  // degrees, edge weights and transpose index

    std::size_t n_ = 0;
    std::vector<std::size_t> offsets_;  // CSR structure incl. self-loops
    std::vector<std::uint32_t> cols_;
    std::vector<float> gcn_vals_;
    std::vector<float> mean_vals_;
    std::vector<std::size_t> t_offsets_;  // transpose: incoming edges per node
    std::vector<std::uint32_t> t_src_;    // source row of each incoming edge
    std::vector<std::uint32_t> t_edge_;   // forward edge index (into *_vals_)
};

}  // namespace fare
