#include "models/gnn/layers.hpp"

namespace fare {

const char* gnn_kind_name(GnnKind kind) {
    switch (kind) {
        case GnnKind::kGCN: return "GCN";
        case GnnKind::kGAT: return "GAT";
        case GnnKind::kSAGE: return "SAGE";
    }
    return "?";
}

void Layer::zero_grads() {
    for (Matrix* g : grads()) g->fill(0.0f);
}

void Layer::sync_effective() {
    auto p = params();
    auto e = effective_params();
    for (std::size_t i = 0; i < p.size(); ++i) *e[i] = *p[i];
}

std::size_t Layer::num_weights() {
    std::size_t n = 0;
    for (Matrix* p : params()) n += p->size();
    return n;
}

}  // namespace fare
