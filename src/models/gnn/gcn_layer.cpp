// GCN layer: Y = act(A_gcn (X W)) with A_gcn = D^-1/2 (A + I) D^-1/2
// (Kipf & Welling). The two matmuls are exactly the paper's combination
// (X W on weight crossbars) and aggregation (A_gcn * on adjacency crossbars)
// phases.
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "models/gnn/layers.hpp"

namespace fare {

namespace {

class GCNLayer final : public Layer {
public:
    GCNLayer(std::size_t in, std::size_t out, bool with_relu, Rng& rng)
        : with_relu_(with_relu), w_(in, out), grad_w_(in, out) {
        w_.xavier_init(rng);
        w_eff_ = w_;
    }

    Matrix forward(const Matrix& x, const BatchGraphView& g) override {
        x_ = x;
        const Matrix h = matmul(x, w_eff_);   // combination phase
        pre_ = g.gcn_multiply(h);             // aggregation phase
        return with_relu_ ? relu(pre_) : pre_;
    }

    Matrix backward(const Matrix& grad_out, const BatchGraphView& g) override {
        const Matrix g_pre =
            with_relu_ ? relu_backward(grad_out, pre_) : grad_out;
        const Matrix g_h = g.gcn_multiply_t(g_pre);
        grad_w_ += matmul_at_b(x_, g_h);
        return matmul_a_bt(g_h, w_eff_);
    }

    std::vector<Matrix*> params() override { return {&w_}; }
    std::vector<Matrix*> grads() override { return {&grad_w_}; }
    std::vector<Matrix*> effective_params() override { return {&w_eff_}; }

private:
    bool with_relu_;
    Matrix w_, grad_w_, w_eff_;
    Matrix x_, pre_;  // forward caches
};

}  // namespace

std::unique_ptr<Layer> make_gcn_layer(std::size_t in, std::size_t out, bool with_relu,
                                      Rng& rng) {
    return std::make_unique<GCNLayer>(in, out, with_relu, rng);
}

}  // namespace fare
