#include "models/gnn/gnn_family.hpp"

#include "fare/fare_trainer.hpp"
#include "sim/registry.hpp"

namespace fare {

std::vector<WorkloadSpec> GnnFamily::workloads() const { return fig5_workloads(); }

TrainConfig GnnFamily::train_config(const WorkloadSpec& workload,
                                    std::uint64_t seed) const {
    // WorkloadSpec::train_config handles the "gnn" family inline (it only
    // dispatches here for other families), so this cannot recurse.
    return workload.train_config(seed);
}

WorkloadTiming GnnFamily::paper_scale_timing(const WorkloadSpec& workload) const {
    return workload.paper_scale_timing();
}

SchemeRunResult GnnFamily::run_train(const WorkloadSpec& workload, Scheme scheme,
                                     const TrainConfig& train_config,
                                     const FaultScenario& scenario,
                                     const HardwareOverrides& hw_overrides,
                                     std::uint64_t hw_seed) const {
    const Dataset dataset = workload.make_dataset(train_config.seed);
    return run_scheme(dataset, scheme, train_config, scenario, hw_overrides,
                      hw_seed);
}

DeploymentResult GnnFamily::run_deploy(const WorkloadSpec& workload, Scheme scheme,
                                       const TrainConfig& train_config,
                                       const FaultScenario& scenario,
                                       const HardwareOverrides& hw_overrides,
                                       std::uint64_t hw_seed) const {
    const Dataset dataset = workload.make_dataset(train_config.seed);
    return run_deployment(dataset, train_config, scheme, scenario, hw_overrides,
                          hw_seed);
}

}  // namespace fare
