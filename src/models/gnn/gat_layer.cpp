// Graph Attention layer, single head (Veličković et al.):
//   h_i = (X W)_i
//   e_ij = LeakyReLU(a_src . h_i + a_dst . h_j)   for j in N(i) u {i}
//   alpha_ij = softmax_j(e_ij)
//   Y_i = act(sum_j alpha_ij h_j)
//
// The full backward pass is hand-derived (verified against finite
// differences in tests/gnn_layers_test.cpp): gradients flow through the
// aggregation weights alpha, the attention logits and both attention
// vectors.
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "models/gnn/layers.hpp"

namespace fare {

namespace {

constexpr float kAttnSlope = 0.2f;

class GATLayer final : public Layer {
public:
    GATLayer(std::size_t in, std::size_t out, bool with_relu, Rng& rng)
        : with_relu_(with_relu),
          w_(in, out),
          a_src_(1, out),
          a_dst_(1, out),
          grad_w_(in, out),
          grad_a_src_(1, out),
          grad_a_dst_(1, out) {
        w_.xavier_init(rng);
        a_src_.xavier_init(rng);
        a_dst_.xavier_init(rng);
        w_eff_ = w_;
        a_src_eff_ = a_src_;
        a_dst_eff_ = a_dst_;
    }

    Matrix forward(const Matrix& x, const BatchGraphView& g) override {
        const std::size_t n = g.num_nodes();
        x_ = x;
        h_ = matmul(x, w_eff_);  // combination phase on weight crossbars
        const std::size_t d = h_.cols();

        s_.assign(n, 0.0f);
        t_.assign(n, 0.0f);
        for (std::size_t i = 0; i < n; ++i) {
            auto hrow = h_.row(i);
            float s = 0.0f, t = 0.0f;
            for (std::size_t k = 0; k < d; ++k) {
                s += a_src_eff_(0, k) * hrow[k];
                t += a_dst_eff_(0, k) * hrow[k];
            }
            s_[i] = s;
            t_[i] = t;
        }

        auto offsets = g.offsets();
        z_.assign(offsets.back(), 0.0f);
        alpha_.assign(offsets.back(), 0.0f);
        Matrix pre(n, d);
        for (std::size_t i = 0; i < n; ++i) {
            auto nbrs = g.row_neighbors(i);
            const std::size_t base = offsets[i];
            float mx = -1e30f;
            for (std::size_t e = 0; e < nbrs.size(); ++e) {
                const float z = s_[i] + t_[nbrs[e]];
                z_[base + e] = z;
                const float lz = leaky_relu_scalar(z, kAttnSlope);
                alpha_[base + e] = lz;
                mx = std::max(mx, lz);
            }
            float sum = 0.0f;
            for (std::size_t e = 0; e < nbrs.size(); ++e) {
                alpha_[base + e] = std::exp(alpha_[base + e] - mx);
                sum += alpha_[base + e];
            }
            const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
            auto prow = pre.row(i);
            for (std::size_t e = 0; e < nbrs.size(); ++e) {
                alpha_[base + e] *= inv;
                auto hrow = h_.row(nbrs[e]);
                const float a = alpha_[base + e];
                for (std::size_t k = 0; k < d; ++k) prow[k] += a * hrow[k];
            }
        }
        pre_ = std::move(pre);
        return with_relu_ ? relu(pre_) : pre_;
    }

    Matrix backward(const Matrix& grad_out, const BatchGraphView& g) override {
        const std::size_t n = g.num_nodes();
        const std::size_t d = h_.cols();
        const Matrix g_pre =
            with_relu_ ? relu_backward(grad_out, pre_) : grad_out;

        Matrix g_h(n, d);
        std::vector<float> g_s(n, 0.0f);
        std::vector<float> g_t(n, 0.0f);
        auto offsets = g.offsets();

        std::vector<float> g_alpha;
        for (std::size_t i = 0; i < n; ++i) {
            auto nbrs = g.row_neighbors(i);
            const std::size_t base = offsets[i];
            auto grow = g_pre.row(i);

            // dL/dalpha_ij = g_i . h_j ; dL/dh_j += alpha_ij g_i
            g_alpha.assign(nbrs.size(), 0.0f);
            for (std::size_t e = 0; e < nbrs.size(); ++e) {
                auto hrow = h_.row(nbrs[e]);
                auto ghrow = g_h.row(nbrs[e]);
                const float a = alpha_[base + e];
                float dot = 0.0f;
                for (std::size_t k = 0; k < d; ++k) {
                    dot += grow[k] * hrow[k];
                    ghrow[k] += a * grow[k];
                }
                g_alpha[e] = dot;
            }
            // Softmax backward: dL/de = alpha * (dL/dalpha - sum_k alpha_k dL/dalpha_k)
            float inner = 0.0f;
            for (std::size_t e = 0; e < nbrs.size(); ++e)
                inner += alpha_[base + e] * g_alpha[e];
            for (std::size_t e = 0; e < nbrs.size(); ++e) {
                const float g_e = alpha_[base + e] * (g_alpha[e] - inner);
                const float g_z =
                    g_e * leaky_relu_grad_scalar(z_[base + e], kAttnSlope);
                g_s[i] += g_z;
                g_t[nbrs[e]] += g_z;
            }
        }

        // s_i = a_src . h_i, t_i = a_dst . h_i
        for (std::size_t i = 0; i < n; ++i) {
            auto hrow = h_.row(i);
            auto ghrow = g_h.row(i);
            for (std::size_t k = 0; k < d; ++k) {
                grad_a_src_(0, k) += g_s[i] * hrow[k];
                grad_a_dst_(0, k) += g_t[i] * hrow[k];
                ghrow[k] += g_s[i] * a_src_eff_(0, k) + g_t[i] * a_dst_eff_(0, k);
            }
        }

        grad_w_ += matmul_at_b(x_, g_h);
        return matmul_a_bt(g_h, w_eff_);
    }

    std::vector<Matrix*> params() override { return {&w_, &a_src_, &a_dst_}; }
    std::vector<Matrix*> grads() override {
        return {&grad_w_, &grad_a_src_, &grad_a_dst_};
    }
    std::vector<Matrix*> effective_params() override {
        return {&w_eff_, &a_src_eff_, &a_dst_eff_};
    }

private:
    bool with_relu_;
    Matrix w_, a_src_, a_dst_;
    Matrix grad_w_, grad_a_src_, grad_a_dst_;
    Matrix w_eff_, a_src_eff_, a_dst_eff_;
    // forward caches
    Matrix x_, h_, pre_;
    std::vector<float> s_, t_, z_, alpha_;
};

}  // namespace

std::unique_ptr<Layer> make_gat_layer(std::size_t in, std::size_t out, bool with_relu,
                                      Rng& rng) {
    return std::make_unique<GATLayer>(in, out, with_relu, rng);
}

}  // namespace fare
