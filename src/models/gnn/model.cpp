#include "models/gnn/model.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

Model::Model(const ModelConfig& config) : config_(config) {
    FARE_CHECK(config.num_layers >= 1, "model needs at least one layer");
    Rng rng(config.seed);
    auto make = [&](std::size_t in, std::size_t out, bool act) {
        switch (config_.kind) {
            case GnnKind::kGCN: return make_gcn_layer(in, out, act, rng);
            case GnnKind::kGAT: return make_gat_layer(in, out, act, rng);
            case GnnKind::kSAGE: return make_sage_layer(in, out, act, rng);
        }
        throw InvalidArgument("unknown GNN kind (expected GCN | GAT | SAGE)");
    };
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        const std::size_t in = (l == 0) ? config.in_features : config.hidden;
        const std::size_t out =
            (l + 1 == config.num_layers) ? config.num_classes : config.hidden;
        const bool act = l + 1 != config.num_layers;  // no activation on logits
        layers_.push_back(make(in, out, act));
    }
}

std::vector<Matrix*> Model::params() {
    std::vector<Matrix*> out;
    for (auto& l : layers_)
        for (Matrix* p : l->params()) out.push_back(p);
    return out;
}

std::vector<Matrix*> Model::grads() {
    std::vector<Matrix*> out;
    for (auto& l : layers_)
        for (Matrix* g : l->grads()) out.push_back(g);
    return out;
}

std::vector<Matrix*> Model::effective_params() {
    std::vector<Matrix*> out;
    for (auto& l : layers_)
        for (Matrix* e : l->effective_params()) out.push_back(e);
    return out;
}

std::size_t Model::num_weights() {
    std::size_t n = 0;
    for (auto& l : layers_) n += l->num_weights();
    return n;
}

Matrix Model::forward(const Matrix& x, const BatchGraphView& g) {
    Matrix h = x;
    for (auto& l : layers_) h = l->forward(h, g);
    return h;
}

void Model::backward(const Matrix& grad_logits, const BatchGraphView& g) {
    Matrix grad = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = (*it)->backward(grad, g);
}

void Model::zero_grads() {
    for (auto& l : layers_) l->zero_grads();
}

void Model::sync_effective() {
    for (auto& l : layers_) l->sync_effective();
}

}  // namespace fare
