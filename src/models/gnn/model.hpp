// A GNN model: a stack of layers of one kind (GCN / GAT / SAGE), matching
// the paper's per-dataset workloads (Table II).
#pragma once

#include <memory>
#include <vector>

#include "models/gnn/layers.hpp"

namespace fare {

struct ModelConfig {
    GnnKind kind = GnnKind::kGCN;
    std::size_t in_features = 32;
    std::size_t hidden = 32;
    std::size_t num_classes = 8;
    std::size_t num_layers = 2;
    std::uint64_t seed = 1;
};

class Model {
public:
    explicit Model(const ModelConfig& config);

    const ModelConfig& config() const { return config_; }
    std::size_t num_layers() const { return layers_.size(); }
    Layer& layer(std::size_t i) { return *layers_[i]; }

    /// Flattened parameter/gradient/effective-parameter lists across layers
    /// (stable indexing used by the hardware model).
    std::vector<Matrix*> params();
    std::vector<Matrix*> grads();
    std::vector<Matrix*> effective_params();

    std::size_t num_weights();

    /// Forward through all layers; logits out.
    Matrix forward(const Matrix& x, const BatchGraphView& g);

    /// Backward from d loss / d logits.
    void backward(const Matrix& grad_logits, const BatchGraphView& g);

    void zero_grads();
    /// Copy logical -> effective weights for all layers (ideal hardware).
    void sync_effective();

private:
    ModelConfig config_;
    std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fare
