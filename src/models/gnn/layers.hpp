// GNN layer interface.
//
// Layers keep two copies of every parameter: the *logical* weights the
// optimizer updates (host-side master copy) and the *effective* weights the
// forward/backward computation uses — what the faulty crossbars actually
// return after corruption and clipping. The trainer refreshes the effective
// copies from the hardware model before every batch; with ideal hardware
// they simply mirror the logical weights. Gradients are computed w.r.t. the
// effective weights (that is what the analog tiles differentiate through)
// and applied to the logical weights, mirroring on-device training with a
// host-resident optimizer state (paper §III-A).
#pragma once

#include <memory>
#include <vector>

#include "models/gnn/batch_view.hpp"
#include "nn/train_types.hpp"
#include "numeric/matrix.hpp"

namespace fare {

class Rng;

class Layer {
public:
    virtual ~Layer() = default;

    /// Forward pass; caches whatever backward needs.
    virtual Matrix forward(const Matrix& x, const BatchGraphView& g) = 0;

    /// Backward pass for the most recent forward on the same view.
    /// Accumulates parameter gradients and returns grad w.r.t. the input.
    virtual Matrix backward(const Matrix& grad_out, const BatchGraphView& g) = 0;

    /// Logical (master) parameters, matched index-for-index with grads()
    /// and effective_params().
    virtual std::vector<Matrix*> params() = 0;
    virtual std::vector<Matrix*> grads() = 0;
    /// Hardware-visible copies used in compute; refreshed by the trainer.
    virtual std::vector<Matrix*> effective_params() = 0;

    void zero_grads();
    /// Copy logical -> effective (ideal hardware).
    void sync_effective();
    std::size_t num_weights();
};

/// Graph Convolutional Network layer: Y = act(A_gcn (X W)).
std::unique_ptr<Layer> make_gcn_layer(std::size_t in, std::size_t out, bool with_relu,
                                      Rng& rng);

/// Graph Attention layer (single head): Y = act(sum_j alpha_ij (X W)_j).
std::unique_ptr<Layer> make_gat_layer(std::size_t in, std::size_t out, bool with_relu,
                                      Rng& rng);

/// GraphSAGE layer (mean aggregator): Y = act(X W_self + (A_mean X) W_neigh).
std::unique_ptr<Layer> make_sage_layer(std::size_t in, std::size_t out, bool with_relu,
                                       Rng& rng);

}  // namespace fare
