#include "models/gnn/batch_view.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace fare {

namespace {

/// Rows per parallel chunk of the aggregation loops.
constexpr std::size_t kRowChunk = 64;

}  // namespace

BatchGraphView BatchGraphView::from_bits(const BitMatrix& adj) {
    FARE_CHECK(adj.rows == adj.cols, "adjacency must be square");
    BatchGraphView v;
    v.n_ = adj.rows;
    v.offsets_.assign(v.n_ + 1, 0);
    // Single pass over the dense bits: emit columns as they are seen and
    // close each row's offset from the running total.
    v.cols_.reserve(v.n_ * 2);
    for (std::size_t r = 0; r < v.n_; ++r) {
        const std::uint8_t* row = adj.bits.data() + r * v.n_;
        for (std::size_t c = 0; c < v.n_; ++c)
            if (row[c] != 0 || c == r) v.cols_.push_back(static_cast<std::uint32_t>(c));
        v.offsets_[r + 1] = v.cols_.size();
    }
    v.finalize();
    return v;
}

BatchGraphView BatchGraphView::from_graph(const CSRGraph& g) {
    BatchGraphView v;
    v.n_ = g.num_nodes();
    v.offsets_.assign(v.n_ + 1, 0);
    for (NodeId r = 0; r < v.n_; ++r)
        v.offsets_[r + 1] = v.offsets_[r] + g.degree(r) + 1;  // +1 self-loop
    v.cols_.resize(v.offsets_.back());
    std::size_t pos = 0;
    for (NodeId r = 0; r < v.n_; ++r) {
        bool self_emitted = false;
        for (NodeId c : g.neighbors(r)) {
            if (!self_emitted && c > r) {
                v.cols_[pos++] = r;
                self_emitted = true;
            }
            v.cols_[pos++] = c;
        }
        if (!self_emitted) v.cols_[pos++] = r;
    }
    v.finalize();
    return v;
}

void BatchGraphView::finalize() {
    std::vector<float> out_deg(n_, 0.0f);
    std::vector<float> in_deg(n_, 0.0f);
    for (std::size_t r = 0; r < n_; ++r) {
        out_deg[r] = static_cast<float>(offsets_[r + 1] - offsets_[r]);
        for (std::size_t e = offsets_[r]; e < offsets_[r + 1]; ++e) in_deg[cols_[e]] += 1.0f;
    }
    gcn_vals_.resize(cols_.size());
    mean_vals_.resize(cols_.size());
    for (std::size_t r = 0; r < n_; ++r) {
        const float inv_out = out_deg[r] > 0 ? 1.0f / out_deg[r] : 0.0f;
        const float inv_sqrt_out = out_deg[r] > 0 ? 1.0f / std::sqrt(out_deg[r]) : 0.0f;
        for (std::size_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
            const float din = in_deg[cols_[e]];
            gcn_vals_[e] = din > 0 ? inv_sqrt_out / std::sqrt(din) : 0.0f;
            mean_vals_[e] = inv_out;
        }
    }

    // Transpose structure (counting sort by target column, scanning rows in
    // ascending order): lets multiply_t gather per *output* row, which makes
    // it embarrassingly row-parallel, and preserves the ascending-source-row
    // accumulation order of the old scatter implementation bit for bit.
    t_offsets_.assign(n_ + 1, 0);
    for (const std::uint32_t c : cols_) ++t_offsets_[c + 1];
    for (std::size_t c = 0; c < n_; ++c) t_offsets_[c + 1] += t_offsets_[c];
    t_src_.resize(cols_.size());
    t_edge_.resize(cols_.size());
    std::vector<std::size_t> cursor(t_offsets_.begin(), t_offsets_.end() - 1);
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
            const std::size_t slot = cursor[cols_[e]]++;
            t_src_[slot] = static_cast<std::uint32_t>(r);
            t_edge_[slot] = static_cast<std::uint32_t>(e);
        }
    }
}

Matrix BatchGraphView::multiply(const std::vector<float>& vals, const Matrix& x) const {
    FARE_CHECK(x.rows() == n_, "aggregation input height mismatch");
    Matrix y(n_, x.cols());  // zero fill: the kernel accumulates
    const std::size_t cols = x.cols();
    const simd::SimdKernels& k = simd::kernels();
    auto rows_fn = [&](std::size_t r0, std::size_t r1) {
        k.aggregate_rows(offsets_.data(), cols_.data(), vals.data(),
                         x.flat().data(), y.flat().data(), r0, r1, cols);
    };
    parallel_row_blocks(n_, cols_.size() * cols, kRowChunk, rows_fn);
    return y;
}

Matrix BatchGraphView::multiply_t(const std::vector<float>& vals, const Matrix& x) const {
    FARE_CHECK(x.rows() == n_, "aggregation input height mismatch");
    Matrix y(n_, x.cols());  // zero fill: the kernel accumulates
    const std::size_t cols = x.cols();
    const simd::SimdKernels& k = simd::kernels();
    auto rows_fn = [&](std::size_t c0, std::size_t c1) {
        k.aggregate_t_rows(t_offsets_.data(), t_src_.data(), t_edge_.data(),
                           vals.data(), x.flat().data(), y.flat().data(), c0,
                           c1, cols);
    };
    parallel_row_blocks(n_, cols_.size() * cols, kRowChunk, rows_fn);
    return y;
}

Matrix BatchGraphView::gcn_multiply(const Matrix& x) const { return multiply(gcn_vals_, x); }
Matrix BatchGraphView::gcn_multiply_t(const Matrix& x) const {
    return multiply_t(gcn_vals_, x);
}
Matrix BatchGraphView::mean_multiply(const Matrix& x) const {
    return multiply(mean_vals_, x);
}
Matrix BatchGraphView::mean_multiply_t(const Matrix& x) const {
    return multiply_t(mean_vals_, x);
}

}  // namespace fare
