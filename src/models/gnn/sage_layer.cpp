// GraphSAGE layer with mean aggregator (Hamilton et al.):
//   Y = act(X W_self + (A_mean X) W_neigh)
// A_mean = D^-1 (A + I). Both weight matrices live on weight crossbars; the
// mean aggregation runs on the adjacency crossbars.
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "models/gnn/layers.hpp"

namespace fare {

namespace {

class SAGELayer final : public Layer {
public:
    SAGELayer(std::size_t in, std::size_t out, bool with_relu, Rng& rng)
        : with_relu_(with_relu),
          w_self_(in, out),
          w_neigh_(in, out),
          grad_w_self_(in, out),
          grad_w_neigh_(in, out) {
        w_self_.xavier_init(rng);
        w_neigh_.xavier_init(rng);
        w_self_eff_ = w_self_;
        w_neigh_eff_ = w_neigh_;
    }

    Matrix forward(const Matrix& x, const BatchGraphView& g) override {
        x_ = x;
        m_ = g.mean_multiply(x);  // aggregation phase
        pre_ = matmul(x, w_self_eff_);
        pre_ += matmul(m_, w_neigh_eff_);  // combination phase
        return with_relu_ ? relu(pre_) : pre_;
    }

    Matrix backward(const Matrix& grad_out, const BatchGraphView& g) override {
        const Matrix g_pre =
            with_relu_ ? relu_backward(grad_out, pre_) : grad_out;
        grad_w_self_ += matmul_at_b(x_, g_pre);
        grad_w_neigh_ += matmul_at_b(m_, g_pre);
        Matrix g_x = matmul_a_bt(g_pre, w_self_eff_);
        g_x += g.mean_multiply_t(matmul_a_bt(g_pre, w_neigh_eff_));
        return g_x;
    }

    std::vector<Matrix*> params() override { return {&w_self_, &w_neigh_}; }
    std::vector<Matrix*> grads() override { return {&grad_w_self_, &grad_w_neigh_}; }
    std::vector<Matrix*> effective_params() override {
        return {&w_self_eff_, &w_neigh_eff_};
    }

private:
    bool with_relu_;
    Matrix w_self_, w_neigh_, grad_w_self_, grad_w_neigh_;
    Matrix w_self_eff_, w_neigh_eff_;
    Matrix x_, m_, pre_;  // forward caches
};

}  // namespace

std::unique_ptr<Layer> make_sage_layer(std::size_t in, std::size_t out, bool with_relu,
                                       Rng& rng) {
    return std::make_unique<SAGELayer>(in, out, with_relu, rng);
}

}  // namespace fare
