#include "models/gnn/trainer.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "graph/partitioner.hpp"

namespace fare {

Trainer::Trainer(const Dataset& dataset, const TrainConfig& config,
                 HardwareModel* hardware)
    : dataset_(dataset), config_(config), hardware_(hardware) {
    FARE_CHECK(config.epochs >= 1, "need at least one epoch");
    FARE_CHECK(config.num_partitions >= config.partitions_per_batch,
               "more partitions per batch than partitions");

    ModelConfig mc;
    mc.kind = config.kind;
    mc.in_features = dataset.num_features();
    mc.hidden = config.hidden;
    mc.num_classes = static_cast<std::size_t>(dataset.num_classes);
    mc.num_layers = config.num_layers;
    mc.seed = config.seed;
    model_ = std::make_unique<Model>(mc);

    // Host preprocessing: partition once, form fixed cluster batches. The
    // batch composition stays fixed across epochs (the paper computes the
    // fault-aware mapping Pi once in preprocessing); only the processing
    // order is shuffled per epoch. The algorithm is a sweepable knob: any
    // registered partitioner, selected by name ("multilevel" reproduces the
    // paper's METIS workflow).
    const Partitioner& algo = find_partitioner(config.partitioner);
    const auto parts =
        algo.partition(dataset.graph, config.num_partitions, config.seed);
    partition_quality_ = compute_quality(dataset.graph, parts, algo.name());
    auto subs = make_cluster_batches(dataset.graph, parts, config.partitions_per_batch,
                                     config.seed);

    batches_.reserve(subs.size());
    for (auto& sub : subs) {
        BatchData b;
        const std::size_t n = sub.nodes.size();
        b.features = Matrix(n, dataset.num_features());
        b.labels.resize(n);
        b.train_mask.assign(n, false);
        b.val_mask.assign(n, false);
        b.test_mask.assign(n, false);
        for (std::size_t i = 0; i < n; ++i) {
            const NodeId g = sub.nodes[i];
            auto dst = b.features.row(i);
            auto src = dataset.features.row(g);
            std::copy(src.begin(), src.end(), dst.begin());
            b.labels[i] = dataset.labels[g];
            switch (dataset.split[g]) {
                case Split::kTrain: b.train_mask[i] = true; break;
                case Split::kVal: b.val_mask[i] = true; break;
                case Split::kTest: b.test_mask[i] = true; break;
            }
        }
        b.ideal_view = BatchGraphView::from_graph(sub.graph);
        batch_bits_.push_back(BitMatrix::from_graph(sub.graph));
        batch_parts_.push_back(sub.node_part);
        b.sub = std::move(sub);
        batches_.push_back(std::move(b));
    }
}

void Trainer::refresh_effective_weights() {
    const std::uint64_t hw_version =
        hardware_ != nullptr ? hardware_->weights_state_version() : 0;
    if (weights_refreshed_once_ && refreshed_params_version_ == params_version_ &&
        refreshed_hw_version_ == hw_version)
        return;  // nothing changed since the last corruption pass

    auto params = model_->params();
    auto eff = model_->effective_params();
    if (hardware_ == nullptr) {
        model_->sync_effective();
    } else {
        for (std::size_t i = 0; i < params.size(); ++i)
            *eff[i] = hardware_->effective_weights(i, *params[i]);
    }
    weights_refreshed_once_ = true;
    refreshed_params_version_ = params_version_;
    refreshed_hw_version_ = hw_version;
}

const BatchGraphView& Trainer::effective_view(std::size_t batch_idx,
                                              const BatchData& batch) {
    if (hardware_ == nullptr) return batch.ideal_view;
    const std::uint64_t version = hardware_->adjacency_state_version();
    if (!view_cache_valid_ || version != view_cache_version_) {
        view_cache_.assign(batches_.size(), BatchGraphView());
        view_cached_.assign(batches_.size(), false);
        view_cache_version_ = version;
        view_cache_valid_ = true;
    }
    if (!view_cached_[batch_idx]) {
        const BitMatrix bits =
            hardware_->effective_adjacency(batch_idx, batch_bits_[batch_idx]);
        view_cache_[batch_idx] = BatchGraphView::from_bits(bits);
        view_cached_[batch_idx] = true;
    }
    return view_cache_[batch_idx];
}

void Trainer::evaluate(MetricAccumulator& acc, Split split) {
    refresh_effective_weights();
    for (std::size_t bi = 0; bi < batches_.size(); ++bi) {
        auto& batch = batches_[bi];
        const BatchGraphView& view = effective_view(bi, batch);
        const Matrix logits = model_->forward(batch.features, view);
        const auto& mask = split == Split::kTrain  ? batch.train_mask
                           : split == Split::kVal ? batch.val_mask
                                                  : batch.test_mask;
        acc.update(logits, batch.labels, mask);
    }
}

std::vector<Matrix> Trainer::export_params() {
    std::vector<Matrix> out;
    for (Matrix* p : model_->params()) out.push_back(*p);
    return out;
}

void Trainer::import_params(const std::vector<Matrix>& params) {
    auto dst = model_->params();
    FARE_CHECK(params.size() == dst.size(), "parameter count mismatch on import");
    for (std::size_t i = 0; i < params.size(); ++i) {
        FARE_CHECK(params[i].rows() == dst[i]->rows() &&
                       params[i].cols() == dst[i]->cols(),
                   "parameter shape mismatch on import");
        *dst[i] = params[i];
    }
    ++params_version_;
}

void Trainer::prepare_hardware() {
    if (hardware_ == nullptr) return;
    hardware_->bind_params(model_->params());
    hardware_->set_batch_partitions(batch_parts_);
    hardware_->preprocess(batch_bits_);
}

double Trainer::evaluate_test_accuracy() {
    MetricAccumulator acc(dataset_.num_classes);
    evaluate(acc, Split::kTest);
    return acc.accuracy();
}

TrainResult Trainer::run() {
    TrainResult result;
    result.partition_quality = partition_quality_;
    Stopwatch prep_watch;
    prepare_hardware();
    result.preprocess_seconds = prep_watch.elapsed_seconds();

    Adam optimizer(config_.lr);
    Rng epoch_rng(config_.seed ^ 0xE70C5ULL);
    Stopwatch train_watch;

    std::vector<std::size_t> order(batches_.size());
    std::iota(order.begin(), order.end(), 0u);

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        epoch_rng.shuffle(order);
        float loss_acc = 0.0f;
        std::size_t loss_batches = 0;
        MetricAccumulator train_acc(dataset_.num_classes);

        for (std::size_t step = 0; step < order.size(); ++step) {
            auto& batch = batches_[order[step]];
            refresh_effective_weights();
            const BatchGraphView& view = effective_view(order[step], batch);

            model_->zero_grads();
            const Matrix logits = model_->forward(batch.features, view);
            const LossResult loss =
                softmax_cross_entropy(logits, batch.labels, batch.train_mask);
            if (loss.count == 0) continue;
            train_acc.update(logits, batch.labels, batch.train_mask);
            model_->backward(loss.grad, view);
            optimizer.step(model_->params(), model_->grads());
            ++params_version_;
            // Step hook: write-endurance accounting and mid-epoch fault
            // arrival. A hardware model that changes fault state here bumps
            // its version stamps, so the next refresh_effective_weights /
            // effective_view recomputes exactly then.
            if (hardware_ != nullptr)
                hardware_->on_step_end(epoch, step, order.size());
            loss_acc += loss.loss;
            ++loss_batches;
        }

        if (hardware_ != nullptr) hardware_->on_epoch_end(epoch);

        if (config_.record_curve) {
            EpochStats stats;
            stats.train_loss = loss_batches ? loss_acc / static_cast<float>(loss_batches)
                                            : 0.0f;
            stats.train_accuracy = train_acc.accuracy();
            MetricAccumulator val(dataset_.num_classes);
            evaluate(val, Split::kVal);
            stats.val_accuracy = val.accuracy();
            result.curve.push_back(stats);
        }
    }

    MetricAccumulator test(dataset_.num_classes);
    evaluate(test, Split::kTest);
    result.test_accuracy = test.accuracy();
    result.test_macro_f1 = test.macro_f1();
    result.train_seconds = train_watch.elapsed_seconds();
    return result;
}

}  // namespace fare
