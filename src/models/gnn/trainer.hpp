// Mini-batch GNN trainer over (possibly faulty) simulated ReRAM hardware.
//
// Follows the paper's pipeline (Fig. 2): the graph is METIS-partitioned
// once on the host, partitions are grouped into cluster batches, and each
// training step writes the batch's adjacency blocks and the updated weights
// to crossbars, runs aggregation + combination, and backpropagates. The
// HardwareModel decides what the crossbars actually return.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "nn/hardware_model.hpp"
#include "nn/metrics.hpp"
#include "nn/train_types.hpp"
#include "models/gnn/model.hpp"
#include "graph/dataset.hpp"
#include "graph/subgraph.hpp"

namespace fare {

class Trainer {
public:
    /// `hardware` may be null => ideal (fault-free) hardware. Not owned.
    Trainer(const Dataset& dataset, const TrainConfig& config,
            HardwareModel* hardware = nullptr);

    /// Run the full training loop and final test evaluation.
    TrainResult run();

    /// Copy-out / copy-in of the model's logical parameters, e.g. to deploy
    /// a host-trained model onto (different) faulty hardware.
    std::vector<Matrix> export_params();
    void import_params(const std::vector<Matrix>& params);

    /// Bind + preprocess the attached hardware without training (run() does
    /// this implicitly; needed before evaluate_test_accuracy() on a trainer
    /// that only evaluates).
    void prepare_hardware();

    /// Test accuracy of the current weights on the attached hardware,
    /// without any training.
    double evaluate_test_accuracy();

    Model& model() { return *model_; }
    std::size_t num_batches() const { return batches_.size(); }
    /// Quality report of the partitioning chosen by config.partitioner.
    const PartitionQuality& partition_quality() const { return partition_quality_; }
    /// Ideal adjacency bits per batch (exposed for hardware preprocessing
    /// inspection in tests/examples).
    const std::vector<BitMatrix>& batch_adjacency() const { return batch_bits_; }

private:
    struct BatchData {
        Subgraph sub;
        BatchGraphView ideal_view;
        Matrix features;
        std::vector<int> labels;
        std::vector<bool> train_mask, val_mask, test_mask;
    };

    /// Recorrupt effective weights from the logical params. No-op while
    /// neither the params (stamped by every optimizer step / import) nor the
    /// hardware fault state changed since the last refresh — evaluate() right
    /// after a train step reuses the step's corruption instead of redoing it.
    void refresh_effective_weights();
    /// Effective adjacency view of a batch, cached per batch keyed on the
    /// hardware's adjacency state version: fault maps only change at epoch
    /// boundaries, so the O(n^2) bits -> CSR rebuild happens once per fault
    /// event instead of once per batch visit.
    const BatchGraphView& effective_view(std::size_t batch_idx, const BatchData& batch);
    /// Forward all batches with current effective weights, accumulating
    /// metrics for the chosen split mask.
    void evaluate(MetricAccumulator& acc, Split split);

    const Dataset& dataset_;
    TrainConfig config_;
    HardwareModel* hardware_;
    std::unique_ptr<Model> model_;
    std::vector<BatchData> batches_;
    std::vector<BitMatrix> batch_bits_;
    std::vector<std::vector<int>> batch_parts_;  ///< per-batch node -> partition
    PartitionQuality partition_quality_;

    // Effective-state caches (tentpole: the hot loop recomputes these only
    // when the stamped inputs actually changed).
    std::uint64_t params_version_ = 1;          // bumped per optimizer step
    std::uint64_t refreshed_params_version_ = 0;
    std::uint64_t refreshed_hw_version_ = 0;
    bool weights_refreshed_once_ = false;
    std::vector<BatchGraphView> view_cache_;
    std::vector<bool> view_cached_;
    std::uint64_t view_cache_version_ = 0;
    bool view_cache_valid_ = false;
};

}  // namespace fare
