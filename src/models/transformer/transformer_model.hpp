// Minimal decoder-free transformer classifier for the crossbar fabric.
//
// Architecture (single attention head per block, no LayerNorm — the scaled
// residual stream stays well-conditioned at this depth and keeping every
// parameter a plain matrix means *all* of them live on crossbars):
//
//   X0   = Embed[tokens] + Pos
//   per block: X1 = X + softmax(X Wq (X Wk)^T / sqrt(d)) (X Wv) Wo
//              X2 = X1 + relu(X1 W1) W2
//   logits = mean_rows(X_last) Wc
//
// Mirrors the GNN Layer contract: logical (master) parameters the optimizer
// updates, plus effective copies refreshed from the hardware model before
// each batch. Gradients are computed w.r.t. the effective weights and applied
// to the logical ones (on-device training with a host-resident optimizer).
// GEMMs go through numeric/matrix.hpp and therefore the PR 8 SIMD kernel
// tables; the attention softmax runs on the host (special-function units in
// the accelerator model).
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/matrix.hpp"

namespace fare {

struct TransformerConfig {
    int vocab_size = 64;
    int seq_len = 16;
    int num_classes = 4;
    std::size_t d_model = 32;
    std::size_t num_blocks = 2;
    std::size_t ff_mult = 2;  ///< d_ff = ff_mult * d_model
    std::uint64_t seed = 1;
};

class TransformerModel {
public:
    explicit TransformerModel(const TransformerConfig& config);

    /// Parameter order (stable; this is the crossbar bind order):
    /// embed, pos, then per block {Wq, Wk, Wv, Wo, W1, W2}, then Wc.
    std::vector<Matrix*> params();
    std::vector<Matrix*> grads();
    std::vector<Matrix*> effective_params();

    void zero_grads();
    /// Copy logical -> effective (ideal hardware).
    void sync_effective();

    /// Forward a batch of token sequences with the current effective weights;
    /// returns (batch x classes) logits and caches activations for backward.
    Matrix forward(const std::vector<const std::vector<int>*>& batch_tokens);

    /// Backward for the most recent forward; accumulates parameter grads.
    void backward(const Matrix& grad_logits);

    const TransformerConfig& config() const { return config_; }

private:
    struct BlockParams {
        Matrix wq, wk, wv, wo, w1, w2;
    };
    struct BlockCache {
        Matrix x_in, q, k, v, attn, h, x1, u, r;
    };
    struct SeqCache {
        std::vector<BlockCache> blocks;
        Matrix x_out;
        const std::vector<int>* tokens = nullptr;
    };

    TransformerConfig config_;
    // Logical / gradient / effective triples.
    Matrix embed_, pos_, wc_;
    std::vector<BlockParams> block_;
    Matrix g_embed_, g_pos_, g_wc_;
    std::vector<BlockParams> g_block_;
    Matrix e_embed_, e_pos_, e_wc_;
    std::vector<BlockParams> e_block_;

    std::vector<SeqCache> cache_;
    Matrix pooled_;  ///< (batch x d) mean-pooled final states
};

}  // namespace fare
