#include "models/transformer/transformer_trainer.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace fare {

namespace {

/// Sequences per mini-batch. Fixed (like the cluster-batch composition in
/// the GNN trainer): the fault-aware mapping is computed once in
/// preprocessing, so batch membership must not change across epochs.
constexpr std::size_t kSequencesPerBatch = 16;

}  // namespace

TransformerTrainer::TransformerTrainer(const SeqDataset& dataset,
                                       const TrainConfig& config,
                                       HardwareModel* hardware)
    : dataset_(dataset), config_(config), hardware_(hardware) {
    FARE_CHECK(config.epochs >= 1, "need at least one epoch");

    TransformerConfig mc;
    mc.vocab_size = dataset.vocab_size;
    mc.seq_len = dataset.seq_len;
    mc.num_classes = dataset.num_classes;
    mc.d_model = config.hidden;
    mc.num_blocks = config.num_layers;
    mc.seed = config.seed;
    model_ = std::make_unique<TransformerModel>(mc);

    std::vector<std::size_t> train;
    for (std::size_t i = 0; i < dataset.num_sequences(); ++i)
        if (dataset.split[i] == Split::kTrain) train.push_back(i);
    FARE_CHECK(!train.empty(), "dataset has no training sequences");
    for (std::size_t start = 0; start < train.size(); start += kSequencesPerBatch) {
        const std::size_t end = std::min(start + kSequencesPerBatch, train.size());
        batches_.emplace_back(train.begin() + static_cast<std::ptrdiff_t>(start),
                              train.begin() + static_cast<std::ptrdiff_t>(end));
    }
}

void TransformerTrainer::refresh_effective_weights() {
    const std::uint64_t hw_version =
        hardware_ != nullptr ? hardware_->weights_state_version() : 0;
    if (weights_refreshed_once_ && refreshed_params_version_ == params_version_ &&
        refreshed_hw_version_ == hw_version)
        return;

    auto params = model_->params();
    auto eff = model_->effective_params();
    if (hardware_ == nullptr) {
        model_->sync_effective();
    } else {
        for (std::size_t i = 0; i < params.size(); ++i)
            *eff[i] = hardware_->effective_weights(i, *params[i]);
    }
    weights_refreshed_once_ = true;
    refreshed_params_version_ = params_version_;
    refreshed_hw_version_ = hw_version;
}

Matrix TransformerTrainer::forward_batch(const std::vector<std::size_t>& seqs) {
    std::vector<const std::vector<int>*> toks;
    toks.reserve(seqs.size());
    for (std::size_t s : seqs) toks.push_back(&dataset_.tokens[s]);
    return model_->forward(toks);
}

void TransformerTrainer::evaluate(MetricAccumulator& acc, Split split) {
    refresh_effective_weights();
    std::vector<std::size_t> seqs;
    for (std::size_t i = 0; i < dataset_.num_sequences(); ++i)
        if (dataset_.split[i] == split) seqs.push_back(i);
    if (seqs.empty()) return;
    const Matrix logits = forward_batch(seqs);
    std::vector<int> labels(seqs.size());
    for (std::size_t i = 0; i < seqs.size(); ++i) labels[i] = dataset_.labels[seqs[i]];
    acc.update(logits, labels, std::vector<bool>(seqs.size(), true));
}

std::vector<Matrix> TransformerTrainer::export_params() {
    std::vector<Matrix> out;
    for (Matrix* p : model_->params()) out.push_back(*p);
    return out;
}

void TransformerTrainer::import_params(const std::vector<Matrix>& params) {
    auto dst = model_->params();
    FARE_CHECK(params.size() == dst.size(), "parameter count mismatch on import");
    for (std::size_t i = 0; i < params.size(); ++i) {
        FARE_CHECK(params[i].rows() == dst[i]->rows() &&
                       params[i].cols() == dst[i]->cols(),
                   "parameter shape mismatch on import");
        *dst[i] = params[i];
    }
    ++params_version_;
}

void TransformerTrainer::prepare_hardware() {
    if (hardware_ == nullptr) return;
    hardware_->bind_params(model_->params());
    hardware_->preprocess({});  // no adjacency stream for sequences
}

double TransformerTrainer::evaluate_test_accuracy() {
    MetricAccumulator acc(dataset_.num_classes);
    evaluate(acc, Split::kTest);
    return acc.accuracy();
}

TrainResult TransformerTrainer::run() {
    TrainResult result;
    Stopwatch prep_watch;
    prepare_hardware();
    result.preprocess_seconds = prep_watch.elapsed_seconds();

    Adam optimizer(config_.lr);
    // Distinct stream from the GNN trainer's 0xE70C5 so a GNN and a
    // transformer cell with the same seed stay decorrelated.
    Rng epoch_rng(config_.seed ^ 0x5EC7A5ULL);
    Stopwatch train_watch;

    std::vector<std::size_t> order(batches_.size());
    std::iota(order.begin(), order.end(), 0u);

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        epoch_rng.shuffle(order);
        float loss_acc = 0.0f;
        std::size_t loss_batches = 0;
        MetricAccumulator train_acc(dataset_.num_classes);

        for (std::size_t step = 0; step < order.size(); ++step) {
            const auto& seqs = batches_[order[step]];
            refresh_effective_weights();

            model_->zero_grads();
            const Matrix logits = forward_batch(seqs);
            std::vector<int> labels(seqs.size());
            for (std::size_t i = 0; i < seqs.size(); ++i)
                labels[i] = dataset_.labels[seqs[i]];
            const std::vector<bool> mask(seqs.size(), true);
            const LossResult loss = softmax_cross_entropy(logits, labels, mask);
            if (loss.count == 0) continue;
            train_acc.update(logits, labels, mask);
            model_->backward(loss.grad);
            optimizer.step(model_->params(), model_->grads());
            ++params_version_;
            if (hardware_ != nullptr)
                hardware_->on_step_end(epoch, step, order.size());
            loss_acc += loss.loss;
            ++loss_batches;
        }

        if (hardware_ != nullptr) hardware_->on_epoch_end(epoch);

        if (config_.record_curve) {
            EpochStats stats;
            stats.train_loss = loss_batches ? loss_acc / static_cast<float>(loss_batches)
                                            : 0.0f;
            stats.train_accuracy = train_acc.accuracy();
            MetricAccumulator val(dataset_.num_classes);
            evaluate(val, Split::kVal);
            stats.val_accuracy = val.accuracy();
            result.curve.push_back(stats);
        }
    }

    MetricAccumulator test(dataset_.num_classes);
    evaluate(test, Split::kTest);
    result.test_accuracy = test.accuracy();
    result.test_macro_f1 = test.macro_f1();
    result.train_seconds = train_watch.elapsed_seconds();
    return result;
}

}  // namespace fare
