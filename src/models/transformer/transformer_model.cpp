#include "models/transformer/transformer_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"

namespace fare {

TransformerModel::TransformerModel(const TransformerConfig& config)
    : config_(config) {
    FARE_CHECK(config.num_blocks >= 1, "need at least one transformer block");
    FARE_CHECK(config.d_model >= 1 && config.ff_mult >= 1, "degenerate widths");
    const auto vocab = static_cast<std::size_t>(config.vocab_size);
    const auto len = static_cast<std::size_t>(config.seq_len);
    const auto classes = static_cast<std::size_t>(config.num_classes);
    const std::size_t d = config.d_model;
    const std::size_t ff = config.ff_mult * d;

    Rng rng(config.seed ^ 0x7F2AB1ULL);
    auto init = [&rng](std::size_t r, std::size_t c) {
        Matrix m(r, c);
        m.xavier_init(rng);
        return m;
    };
    embed_ = init(vocab, d);
    pos_ = init(len, d);
    block_.resize(config.num_blocks);
    for (auto& b : block_) {
        b.wq = init(d, d);
        b.wk = init(d, d);
        b.wv = init(d, d);
        b.wo = init(d, d);
        b.w1 = init(d, ff);
        b.w2 = init(ff, d);
    }
    wc_ = init(d, classes);

    auto zeros_like = [](const Matrix& m) { return Matrix(m.rows(), m.cols()); };
    g_embed_ = zeros_like(embed_);
    g_pos_ = zeros_like(pos_);
    g_wc_ = zeros_like(wc_);
    g_block_.resize(config.num_blocks);
    for (std::size_t i = 0; i < block_.size(); ++i) {
        g_block_[i] = {zeros_like(block_[i].wq), zeros_like(block_[i].wk),
                       zeros_like(block_[i].wv), zeros_like(block_[i].wo),
                       zeros_like(block_[i].w1), zeros_like(block_[i].w2)};
    }
    e_embed_ = embed_;
    e_pos_ = pos_;
    e_wc_ = wc_;
    e_block_ = block_;
}

std::vector<Matrix*> TransformerModel::params() {
    std::vector<Matrix*> out = {&embed_, &pos_};
    for (auto& b : block_)
        for (Matrix* m : {&b.wq, &b.wk, &b.wv, &b.wo, &b.w1, &b.w2}) out.push_back(m);
    out.push_back(&wc_);
    return out;
}

std::vector<Matrix*> TransformerModel::grads() {
    std::vector<Matrix*> out = {&g_embed_, &g_pos_};
    for (auto& b : g_block_)
        for (Matrix* m : {&b.wq, &b.wk, &b.wv, &b.wo, &b.w1, &b.w2}) out.push_back(m);
    out.push_back(&g_wc_);
    return out;
}

std::vector<Matrix*> TransformerModel::effective_params() {
    std::vector<Matrix*> out = {&e_embed_, &e_pos_};
    for (auto& b : e_block_)
        for (Matrix* m : {&b.wq, &b.wk, &b.wv, &b.wo, &b.w1, &b.w2}) out.push_back(m);
    out.push_back(&e_wc_);
    return out;
}

void TransformerModel::zero_grads() {
    for (Matrix* g : grads()) g->fill(0.0f);
}

void TransformerModel::sync_effective() {
    auto src = params();
    auto dst = effective_params();
    for (std::size_t i = 0; i < src.size(); ++i) *dst[i] = *src[i];
}

Matrix TransformerModel::forward(
    const std::vector<const std::vector<int>*>& batch_tokens) {
    const std::size_t batch = batch_tokens.size();
    const auto len = static_cast<std::size_t>(config_.seq_len);
    const std::size_t d = config_.d_model;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    cache_.assign(batch, SeqCache{});
    pooled_ = Matrix(batch, d);
    Matrix logits(batch, static_cast<std::size_t>(config_.num_classes));

    for (std::size_t s = 0; s < batch; ++s) {
        const std::vector<int>& toks = *batch_tokens[s];
        FARE_CHECK(toks.size() == len, "sequence length mismatch");
        SeqCache& sc = cache_[s];
        sc.tokens = batch_tokens[s];
        sc.blocks.resize(config_.num_blocks);

        Matrix x(len, d);
        for (std::size_t i = 0; i < len; ++i) {
            auto dst = x.row(i);
            auto emb = e_embed_.row(static_cast<std::size_t>(toks[i]));
            auto pos = e_pos_.row(i);
            for (std::size_t j = 0; j < d; ++j) dst[j] = emb[j] + pos[j];
        }

        for (std::size_t bi = 0; bi < config_.num_blocks; ++bi) {
            const BlockParams& w = e_block_[bi];
            BlockCache& bc = sc.blocks[bi];
            bc.x_in = x;
            bc.q = matmul(x, w.wq);
            bc.k = matmul(x, w.wk);
            bc.v = matmul(x, w.wv);
            Matrix scores = matmul_a_bt(bc.q, bc.k);
            scores *= scale;
            bc.attn = softmax_rows(scores);
            bc.h = matmul(bc.attn, bc.v);
            bc.x1 = x;
            bc.x1 += matmul(bc.h, w.wo);
            bc.u = matmul(bc.x1, w.w1);
            bc.r = relu(bc.u);
            x = bc.x1;
            x += matmul(bc.r, w.w2);
        }
        sc.x_out = x;

        auto pooled = pooled_.row(s);
        const float inv_len = 1.0f / static_cast<float>(len);
        for (std::size_t i = 0; i < len; ++i) {
            auto row = x.row(i);
            for (std::size_t j = 0; j < d; ++j) pooled[j] += row[j] * inv_len;
        }
        auto out = logits.row(s);
        for (std::size_t c = 0; c < logits.cols(); ++c) {
            float acc = 0.0f;
            for (std::size_t j = 0; j < d; ++j) acc += pooled[j] * e_wc_(j, c);
            out[c] = acc;
        }
    }
    return logits;
}

void TransformerModel::backward(const Matrix& grad_logits) {
    FARE_CHECK(grad_logits.rows() == cache_.size(),
               "backward batch does not match the last forward");
    const auto len = static_cast<std::size_t>(config_.seq_len);
    const std::size_t d = config_.d_model;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const float inv_len = 1.0f / static_cast<float>(len);

    for (std::size_t s = 0; s < cache_.size(); ++s) {
        SeqCache& sc = cache_[s];
        Matrix g(1, grad_logits.cols());
        {
            auto src = grad_logits.row(s);
            std::copy(src.begin(), src.end(), g.row(0).begin());
        }
        Matrix pooled(1, d);
        std::copy(pooled_.row(s).begin(), pooled_.row(s).end(), pooled.row(0).begin());

        g_wc_ += matmul_at_b(pooled, g);
        const Matrix dpooled = matmul_a_bt(g, e_wc_);  // (1 x d)

        Matrix dx(len, d);
        for (std::size_t i = 0; i < len; ++i) {
            auto dst = dx.row(i);
            auto src = dpooled.row(0);
            for (std::size_t j = 0; j < d; ++j) dst[j] = src[j] * inv_len;
        }

        for (std::size_t bi = config_.num_blocks; bi-- > 0;) {
            const BlockParams& w = e_block_[bi];
            BlockParams& gw = g_block_[bi];
            BlockCache& bc = sc.blocks[bi];

            // X2 = X1 + relu(X1 W1) W2
            const Matrix& dm = dx;
            gw.w2 += matmul_at_b(bc.r, dm);
            const Matrix dr = matmul_a_bt(dm, w.w2);
            const Matrix du = relu_backward(dr, bc.u);
            gw.w1 += matmul_at_b(bc.x1, du);
            Matrix dx1 = dx;
            dx1 += matmul_a_bt(du, w.w1);

            // X1 = X + (A V) Wo
            const Matrix& dout = dx1;
            gw.wo += matmul_at_b(bc.h, dout);
            const Matrix dh = matmul_a_bt(dout, w.wo);
            const Matrix da = matmul_a_bt(dh, bc.v);
            const Matrix dv = matmul_at_b(bc.attn, dh);

            // Softmax-rows backward: dS_ij = A_ij (dA_ij - sum_k dA_ik A_ik).
            Matrix ds(len, len);
            for (std::size_t i = 0; i < len; ++i) {
                auto a = bc.attn.row(i);
                auto dai = da.row(i);
                float dot = 0.0f;
                for (std::size_t j = 0; j < len; ++j) dot += dai[j] * a[j];
                auto out = ds.row(i);
                for (std::size_t j = 0; j < len; ++j) out[j] = a[j] * (dai[j] - dot);
            }
            Matrix dq = matmul(ds, bc.k);
            dq *= scale;
            Matrix dk = matmul_at_b(ds, bc.q);
            dk *= scale;

            gw.wq += matmul_at_b(bc.x_in, dq);
            gw.wk += matmul_at_b(bc.x_in, dk);
            gw.wv += matmul_at_b(bc.x_in, dv);

            Matrix dxin = dx1;  // residual path
            dxin += matmul_a_bt(dq, w.wq);
            dxin += matmul_a_bt(dk, w.wk);
            dxin += matmul_a_bt(dv, w.wv);
            dx = std::move(dxin);
        }

        g_pos_ += dx;
        const std::vector<int>& toks = *sc.tokens;
        for (std::size_t i = 0; i < len; ++i) {
            auto dst = g_embed_.row(static_cast<std::size_t>(toks[i]));
            auto src = dx.row(i);
            for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
        }
    }
}

}  // namespace fare
