#include "models/transformer/seq_dataset.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fare {

SeqDataset make_seq_cls(const SeqDatasetConfig& config, std::uint64_t seed) {
    const int marker_tokens = config.num_classes * config.markers_per_class;
    FARE_CHECK(config.num_classes >= 2, "need at least two classes");
    FARE_CHECK(config.seq_len >= 1, "need at least one position");
    FARE_CHECK(config.vocab_size > marker_tokens,
               "vocabulary must leave room for noise tokens beyond the markers");

    SeqDataset data;
    data.name = config.name;
    data.vocab_size = config.vocab_size;
    data.seq_len = config.seq_len;
    data.num_classes = config.num_classes;

    const int total =
        config.train_sequences + config.val_sequences + config.test_sequences;
    data.tokens.reserve(static_cast<std::size_t>(total));
    data.labels.reserve(static_cast<std::size_t>(total));
    data.split.reserve(static_cast<std::size_t>(total));

    Rng rng(seed ^ 0x5E9C15ULL);
    const int noise_tokens = config.vocab_size - marker_tokens;
    for (int i = 0; i < total; ++i) {
        const int label = i % config.num_classes;
        std::vector<int> seq(static_cast<std::size_t>(config.seq_len));
        for (auto& tok : seq) {
            if (rng.next_bool(config.marker_fraction)) {
                tok = label * config.markers_per_class +
                      static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(config.markers_per_class)));
            } else {
                tok = marker_tokens +
                      static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(noise_tokens)));
            }
        }
        data.tokens.push_back(std::move(seq));
        data.labels.push_back(label);
        data.split.push_back(i < config.train_sequences ? Split::kTrain
                             : i < config.train_sequences + config.val_sequences
                                 ? Split::kVal
                                 : Split::kTest);
    }
    return data;
}

}  // namespace fare
