// Synthetic sequence-classification workload for the transformer family.
//
// Mirrors the role graph/generators.hpp plays for the GNN family: a
// deterministic generator (seeded Rng) that produces a scaled-down workload
// with a train/val/test split, so every cell regenerates bit-identically on
// any worker. The task is marker-token classification: each class owns a
// small set of marker tokens and a sequence's positions carry either one of
// its class's markers or a token from a shared noise pool. A fault-free
// transformer solves it near-perfectly; stuck-at corruption of the embedding
// / attention / MLP weights degrades it, which is the signal the fault
// tolerance schemes act on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dataset.hpp"

namespace fare {

struct SeqDataset {
    std::string name;
    int vocab_size = 0;
    int seq_len = 0;
    int num_classes = 0;
    std::vector<std::vector<int>> tokens;  ///< [sequence][position] token ids
    std::vector<int> labels;               ///< one class per sequence
    std::vector<Split> split;              ///< one split per sequence

    std::size_t num_sequences() const { return tokens.size(); }
};

struct SeqDatasetConfig {
    std::string name = "SeqCls";
    int vocab_size = 64;
    int seq_len = 16;
    int num_classes = 4;
    int markers_per_class = 4;
    int train_sequences = 96;
    int val_sequences = 32;
    int test_sequences = 64;
    /// Probability that a position carries a class marker (vs. noise).
    double marker_fraction = 0.35;
};

/// Deterministic generator; classes are assigned round-robin so every split
/// is balanced.
SeqDataset make_seq_cls(const SeqDatasetConfig& config, std::uint64_t seed);

}  // namespace fare
