#include "models/transformer/transformer_family.hpp"

#include "common/error.hpp"
#include "fare/baselines.hpp"
#include "fare/fare_trainer.hpp"
#include "fare/scenario.hpp"
#include "models/transformer/seq_dataset.hpp"
#include "models/transformer/transformer_trainer.hpp"
#include "sim/registry.hpp"

namespace fare {

namespace {

SeqDataset make_workload_data(const WorkloadSpec& workload, std::uint64_t seed) {
    FARE_CHECK(workload.dataset == "SeqCls",
               "unknown transformer workload: '" + workload.dataset +
                   "' (registered: SeqCls)");
    SeqDatasetConfig config;  // scaled-down defaults, see seq_dataset.hpp
    return make_seq_cls(config, seed);
}

}  // namespace

std::vector<WorkloadSpec> TransformerFamily::workloads() const {
    WorkloadSpec w;
    w.dataset = "SeqCls";
    w.family = "transformer";
    w.variant = "Transformer";
    return {w};
}

TrainConfig TransformerFamily::train_config(const WorkloadSpec& workload,
                                            std::uint64_t seed) const {
    (void)workload;
    TrainConfig tc;
    tc.hidden = 32;      // d_model
    tc.num_layers = 2;   // attention+MLP blocks
    tc.lr = 0.005f;      // Adam; a notch below the GNN 0.01 for stability
    tc.epochs = default_experiment_epochs();
    tc.seed = seed;
    tc.record_curve = false;
    return tc;
}

WorkloadTiming TransformerFamily::paper_scale_timing(
    const WorkloadSpec& workload) const {
    (void)workload;
    // Paper-scale stand-in: a small BERT-style encoder (vocab 8192, length
    // 128, d=512, ff=1024, 4 blocks) fine-tuned for 100 epochs in batches of
    // 16 sequences.
    WorkloadTiming w;
    w.epochs = 100;
    w.hidden = 512;
    w.layers = 4;
    w.features = 512;
    w.batches_per_epoch = 64;
    w.avg_batch_nodes = 16 * 128;  // token rows streamed per batch
    w.weight_rows_total = 8192 + 128 + 4 * (4 * 512 + 512 + 1024) + 512;
    return w;
}

SchemeRunResult TransformerFamily::run_train(const WorkloadSpec& workload,
                                             Scheme scheme,
                                             const TrainConfig& train_config,
                                             const FaultScenario& scenario,
                                             const HardwareOverrides& hw_overrides,
                                             std::uint64_t hw_seed) const {
    const SeqDataset data = make_workload_data(workload, train_config.seed);
    SchemeRunResult result;
    result.scheme = scheme;
    if (scheme == Scheme::kFaultFree) {
        IdealQuantizedHardware hardware;
        TransformerTrainer trainer(data, train_config, &hardware);
        result.train = trainer.run();
        return result;
    }
    auto hardware = make_hardware(
        scheme, to_hardware_config(scenario, hw_overrides, hw_seed,
                                   train_config.epochs));
    TransformerTrainer trainer(data, train_config, hardware.get());
    result.train = trainer.run();
    harvest_scheme_diagnostics(hardware.get(), result);
    return result;
}

DeploymentResult TransformerFamily::run_deploy(const WorkloadSpec& workload,
                                               Scheme scheme,
                                               const TrainConfig& train_config,
                                               const FaultScenario& scenario,
                                               const HardwareOverrides& hw_overrides,
                                               std::uint64_t hw_seed) const {
    const SeqDataset data = make_workload_data(workload, train_config.seed);
    DeploymentResult result;

    IdealQuantizedHardware ideal;
    TransformerTrainer host_trainer(data, train_config, &ideal);
    result.trained_accuracy = host_trainer.run().test_accuracy;

    auto hardware = make_hardware(
        scheme, to_hardware_config(scenario, hw_overrides, hw_seed,
                                   train_config.epochs));
    TransformerTrainer edge(data, train_config, hardware.get());
    edge.import_params(host_trainer.export_params());
    edge.prepare_hardware();
    result.deployed_accuracy = edge.evaluate_test_accuracy();
    return result;
}

}  // namespace fare
