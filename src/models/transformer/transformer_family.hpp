// "transformer" model family: token-embedding + self-attention + MLP blocks
// trained on the same HardwareModel / crossbar / tile mapping as the GNN
// stack, with a synthetic sequence-classification workload registered beside
// the graph datasets.
#pragma once

#include "nn/model_family.hpp"

namespace fare {

class TransformerFamily final : public ModelFamily {
public:
    std::string name() const override { return "transformer"; }
    std::vector<WorkloadSpec> workloads() const override;
    TrainConfig train_config(const WorkloadSpec& workload,
                             std::uint64_t seed) const override;
    WorkloadTiming paper_scale_timing(const WorkloadSpec& workload) const override;
    SchemeRunResult run_train(const WorkloadSpec& workload, Scheme scheme,
                              const TrainConfig& train_config,
                              const FaultScenario& scenario,
                              const HardwareOverrides& hw_overrides,
                              std::uint64_t hw_seed) const override;
    DeploymentResult run_deploy(const WorkloadSpec& workload, Scheme scheme,
                                const TrainConfig& train_config,
                                const FaultScenario& scenario,
                                const HardwareOverrides& hw_overrides,
                                std::uint64_t hw_seed) const override;
};

}  // namespace fare
