// Mini-batch transformer trainer over (possibly faulty) simulated ReRAM
// hardware — the sequence-family counterpart of models/gnn/trainer.hpp.
//
// Same hardware contract: bind_params once, refresh effective weights from
// the crossbars whenever the logical params or the hardware fault state
// changed, step/epoch hooks for wear accounting and fault arrival. There is
// no adjacency stream (sequences attend densely), so preprocess() is called
// with an empty batch list purely to let the mapper finish its layout.
#pragma once

#include <memory>
#include <vector>

#include "nn/hardware_model.hpp"
#include "nn/metrics.hpp"
#include "nn/train_types.hpp"
#include "models/transformer/seq_dataset.hpp"
#include "models/transformer/transformer_model.hpp"

namespace fare {

class TransformerTrainer {
public:
    /// `hardware` may be null => ideal (fault-free) hardware. Not owned.
    /// TrainConfig reuse: hidden -> d_model, num_layers -> blocks; the graph
    /// partitioning knobs are ignored (nothing to partition).
    TransformerTrainer(const SeqDataset& dataset, const TrainConfig& config,
                       HardwareModel* hardware = nullptr);

    /// Run the full training loop and final test evaluation.
    TrainResult run();

    std::vector<Matrix> export_params();
    void import_params(const std::vector<Matrix>& params);

    /// Bind the attached hardware without training (run() does this
    /// implicitly; needed before evaluate_test_accuracy() on a trainer that
    /// only evaluates).
    void prepare_hardware();

    /// Test accuracy of the current weights on the attached hardware.
    double evaluate_test_accuracy();

    TransformerModel& model() { return *model_; }
    std::size_t num_batches() const { return batches_.size(); }

private:
    void refresh_effective_weights();
    Matrix forward_batch(const std::vector<std::size_t>& seqs);
    void evaluate(MetricAccumulator& acc, Split split);

    const SeqDataset& dataset_;
    TrainConfig config_;
    HardwareModel* hardware_;
    std::unique_ptr<TransformerModel> model_;
    /// Fixed train mini-batches (contiguous chunks; order shuffled per epoch).
    std::vector<std::vector<std::size_t>> batches_;

    std::uint64_t params_version_ = 1;
    std::uint64_t refreshed_params_version_ = 0;
    std::uint64_t refreshed_hw_version_ = 0;
    bool weights_refreshed_once_ = false;
};

}  // namespace fare
