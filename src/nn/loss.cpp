#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/activations.hpp"

namespace fare {

LossResult softmax_cross_entropy(const Matrix& logits, const std::vector<int>& labels,
                                 const std::vector<bool>& mask) {
    FARE_CHECK(labels.size() == logits.rows(), "labels size mismatch");
    FARE_CHECK(mask.size() == logits.rows(), "mask size mismatch");
    LossResult out;
    out.grad = Matrix(logits.rows(), logits.cols());
    const Matrix probs = softmax_rows(logits);

    double loss_acc = 0.0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r]) continue;
        ++out.count;
    }
    if (out.count == 0) return out;
    const float inv_count = 1.0f / static_cast<float>(out.count);

    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r]) continue;
        const int y = labels[r];
        FARE_CHECK(y >= 0 && static_cast<std::size_t>(y) < logits.cols(),
                   "label out of range");
        const float p = std::max(probs(r, static_cast<std::size_t>(y)), 1e-12f);
        loss_acc -= std::log(static_cast<double>(p));
        auto grow = out.grad.row(r);
        auto prow = probs.row(r);
        for (std::size_t c = 0; c < logits.cols(); ++c)
            grow[c] = prow[c] * inv_count;
        grow[static_cast<std::size_t>(y)] -= inv_count;
    }
    out.loss = static_cast<float>(loss_acc / static_cast<double>(out.count));
    return out;
}

}  // namespace fare
