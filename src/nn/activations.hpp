// Elementwise activations and their derivatives.
#pragma once

#include "numeric/matrix.hpp"

namespace fare {

/// y = max(0, x).
Matrix relu(const Matrix& x);
/// Gradient mask: g * 1[x > 0], where x is the pre-activation.
Matrix relu_backward(const Matrix& grad, const Matrix& pre);

/// y = x > 0 ? x : slope * x.
Matrix leaky_relu(const Matrix& x, float slope = 0.2f);
Matrix leaky_relu_backward(const Matrix& grad, const Matrix& pre, float slope = 0.2f);

float leaky_relu_scalar(float x, float slope = 0.2f);
float leaky_relu_grad_scalar(float x, float slope = 0.2f);

/// Row-wise softmax (numerically stabilised).
Matrix softmax_rows(const Matrix& x);

}  // namespace fare
