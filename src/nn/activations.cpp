#include "nn/activations.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fare {

Matrix relu(const Matrix& x) {
    Matrix y = x;
    for (auto& v : y.flat()) v = v > 0.0f ? v : 0.0f;
    return y;
}

Matrix relu_backward(const Matrix& grad, const Matrix& pre) {
    FARE_CHECK(grad.rows() == pre.rows() && grad.cols() == pre.cols(),
               "relu_backward shape mismatch");
    Matrix g = grad;
    auto p = pre.flat();
    auto out = g.flat();
    for (std::size_t i = 0; i < out.size(); ++i)
        if (p[i] <= 0.0f) out[i] = 0.0f;
    return g;
}

float leaky_relu_scalar(float x, float slope) {
    return x > 0.0f ? x : slope * x;
}

float leaky_relu_grad_scalar(float x, float slope) {
    return x > 0.0f ? 1.0f : slope;
}

Matrix leaky_relu(const Matrix& x, float slope) {
    Matrix y = x;
    for (auto& v : y.flat()) v = leaky_relu_scalar(v, slope);
    return y;
}

Matrix leaky_relu_backward(const Matrix& grad, const Matrix& pre, float slope) {
    FARE_CHECK(grad.rows() == pre.rows() && grad.cols() == pre.cols(),
               "leaky_relu_backward shape mismatch");
    Matrix g = grad;
    auto p = pre.flat();
    auto out = g.flat();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] *= leaky_relu_grad_scalar(p[i], slope);
    return g;
}

Matrix softmax_rows(const Matrix& x) {
    Matrix y(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        auto in = x.row(r);
        auto out = y.row(r);
        float mx = in[0];
        for (float v : in) mx = std::max(mx, v);
        float sum = 0.0f;
        for (std::size_t c = 0; c < in.size(); ++c) {
            out[c] = std::exp(in[c] - mx);
            sum += out[c];
        }
        const float inv = 1.0f / sum;
        for (auto& v : out) v *= inv;
    }
    return y;
}

}  // namespace fare
