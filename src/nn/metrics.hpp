// Classification metrics over masked node sets.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace fare {

/// argmax accuracy over nodes where mask[r] is true. Returns 0 when no node
/// is masked.
double accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<bool>& mask);

/// Macro-averaged F1 over classes present in the masked set.
double macro_f1(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<bool>& mask, int num_classes);

/// Running counters so batched evaluation can accumulate across subgraphs.
struct MetricAccumulator {
    std::size_t correct = 0;
    std::size_t total = 0;
    std::vector<std::size_t> tp, fp, fn;  // per class

    explicit MetricAccumulator(int num_classes = 0)
        : tp(static_cast<std::size_t>(num_classes), 0),
          fp(static_cast<std::size_t>(num_classes), 0),
          fn(static_cast<std::size_t>(num_classes), 0) {}

    void update(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<bool>& mask);

    double accuracy() const {
        return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
    }
    double macro_f1() const;
};

}  // namespace fare
