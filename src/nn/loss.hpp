// Masked softmax cross-entropy for node classification.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace fare {

struct LossResult {
    float loss = 0.0f;     ///< mean NLL over masked nodes
    Matrix grad;           ///< d loss / d logits (zero rows for unmasked nodes)
    std::size_t count = 0; ///< number of masked (supervised) nodes
};

/// Softmax cross-entropy over the rows selected by `mask` (local node ->
/// supervised?). `labels` holds one class per local node.
LossResult softmax_cross_entropy(const Matrix& logits, const std::vector<int>& labels,
                                 const std::vector<bool>& mask);

}  // namespace fare
