// First-order optimizers. The optimizer state lives on the host (paper
// §III-A: pipelined training with host-resident weight update logic); it
// updates the *logical* weights, which are then (re)programmed onto the
// faulty crossbars.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace fare {

class Optimizer {
public:
    virtual ~Optimizer() = default;
    /// Apply one update step; params and grads are index-aligned.
    virtual void step(const std::vector<Matrix*>& params,
                      const std::vector<Matrix*>& grads) = 0;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
public:
    explicit Adam(float lr = 0.01f, float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);
    void step(const std::vector<Matrix*>& params,
              const std::vector<Matrix*>& grads) override;

private:
    float lr_, beta1_, beta2_, eps_;
    std::vector<Matrix> m_, v_;
    long t_ = 0;
};

/// SGD with optional momentum.
class Sgd final : public Optimizer {
public:
    explicit Sgd(float lr = 0.01f, float momentum = 0.0f);
    void step(const std::vector<Matrix*>& params,
              const std::vector<Matrix*>& grads) override;

private:
    float lr_, momentum_;
    std::vector<Matrix> velocity_;
};

}  // namespace fare
