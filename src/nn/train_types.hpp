// Model-agnostic training configuration and result types, shared by every
// model family (see nn/model_family.hpp). Extracted from the GNN trainer so
// non-graph families (e.g. the transformer blocks) report through the same
// sweep/serialization plumbing without dragging in graph layers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/partitioner.hpp"

namespace fare {

/// GNN architecture selector. Lives here (not in models/gnn/) because
/// TrainConfig carries it for every cell: it doubles as the GNN family's
/// model-variant tag and is simply ignored by other families, which spell
/// their variant via WorkloadSpec::variant instead.
enum class GnnKind { kGCN, kGAT, kSAGE };
const char* gnn_kind_name(GnnKind kind);

struct TrainConfig {
    GnnKind kind = GnnKind::kGCN;   // GNN family only; others ignore it
    std::size_t hidden = 32;
    std::size_t num_layers = 2;
    float lr = 0.01f;               // Table II
    std::size_t epochs = 40;
    int num_partitions = 40;        // METIS partitions (Table II, scaled)
    int partitions_per_batch = 4;   // "Batch" in Table II
    /// Registry name of the partitioning algorithm (see
    /// graph/partitioner.hpp): "multilevel" (the METIS stand-in the paper
    /// uses), "ldg", "weighted-ldg", "fennel" or "refennel". Graph families
    /// only; sequence families have no adjacency to partition.
    std::string partitioner = "multilevel";
    std::uint64_t seed = 1;
    bool record_curve = true;       // per-epoch metrics (Fig. 4)
};

struct EpochStats {
    float train_loss = 0.0f;
    double train_accuracy = 0.0;
    double val_accuracy = 0.0;
};

struct TrainResult {
    std::vector<EpochStats> curve;
    double test_accuracy = 0.0;
    double test_macro_f1 = 0.0;
    double preprocess_seconds = 0.0;  ///< measured host mapping time
    double train_seconds = 0.0;
    /// Quality of the Cluster-GCN partitioning (computed once in the
    /// trainer constructor; deterministic, serialized with the cell).
    /// Default-initialized for families without a graph to partition.
    PartitionQuality partition_quality;
};

}  // namespace fare
