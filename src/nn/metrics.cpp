#include "nn/metrics.hpp"

#include "common/error.hpp"

namespace fare {

namespace {
int argmax_row(const Matrix& logits, std::size_t r) {
    auto row = logits.row(r);
    int best = 0;
    for (std::size_t c = 1; c < row.size(); ++c)
        if (row[c] > row[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
    return best;
}
}  // namespace

double accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<bool>& mask) {
    MetricAccumulator acc(static_cast<int>(logits.cols()));
    acc.update(logits, labels, mask);
    return acc.accuracy();
}

double macro_f1(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<bool>& mask, int num_classes) {
    MetricAccumulator acc(num_classes);
    acc.update(logits, labels, mask);
    return acc.macro_f1();
}

void MetricAccumulator::update(const Matrix& logits, const std::vector<int>& labels,
                               const std::vector<bool>& mask) {
    FARE_CHECK(labels.size() == logits.rows() && mask.size() == logits.rows(),
               "metric input size mismatch");
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r]) continue;
        const int pred = argmax_row(logits, r);
        const int truth = labels[r];
        ++total;
        if (pred == truth) ++correct;
        if (static_cast<std::size_t>(truth) < tp.size()) {
            if (pred == truth)
                ++tp[static_cast<std::size_t>(truth)];
            else
                ++fn[static_cast<std::size_t>(truth)];
        }
        if (pred != truth && static_cast<std::size_t>(pred) < fp.size())
            ++fp[static_cast<std::size_t>(pred)];
    }
}

double MetricAccumulator::macro_f1() const {
    double sum = 0.0;
    std::size_t present = 0;
    for (std::size_t c = 0; c < tp.size(); ++c) {
        const auto support = tp[c] + fn[c];
        if (support == 0) continue;
        ++present;
        const double denom = static_cast<double>(2 * tp[c] + fp[c] + fn[c]);
        if (denom > 0.0) sum += 2.0 * static_cast<double>(tp[c]) / denom;
    }
    return present == 0 ? 0.0 : sum / static_cast<double>(present);
}

}  // namespace fare
