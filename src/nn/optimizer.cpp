#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fare {

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
    FARE_CHECK(lr > 0.0f, "learning rate must be positive");
}

void Adam::step(const std::vector<Matrix*>& params, const std::vector<Matrix*>& grads) {
    FARE_CHECK(params.size() == grads.size(), "params/grads size mismatch");
    if (m_.empty()) {
        for (Matrix* p : params) {
            m_.emplace_back(p->rows(), p->cols());
            v_.emplace_back(p->rows(), p->cols());
        }
    }
    FARE_CHECK(m_.size() == params.size(), "optimizer bound to different model");
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params.size(); ++i) {
        auto p = params[i]->flat();
        auto g = grads[i]->flat();
        auto m = m_[i].flat();
        auto v = v_[i].flat();
        for (std::size_t j = 0; j < p.size(); ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
            const float mhat = m[j] / bc1;
            const float vhat = v[j] / bc2;
            p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
    FARE_CHECK(lr > 0.0f, "learning rate must be positive");
}

void Sgd::step(const std::vector<Matrix*>& params, const std::vector<Matrix*>& grads) {
    FARE_CHECK(params.size() == grads.size(), "params/grads size mismatch");
    if (velocity_.empty())
        for (Matrix* p : params) velocity_.emplace_back(p->rows(), p->cols());
    FARE_CHECK(velocity_.size() == params.size(), "optimizer bound to different model");
    for (std::size_t i = 0; i < params.size(); ++i) {
        auto p = params[i]->flat();
        auto g = grads[i]->flat();
        auto vel = velocity_[i].flat();
        for (std::size_t j = 0; j < p.size(); ++j) {
            vel[j] = momentum_ * vel[j] - lr_ * g[j];
            p[j] += vel[j];
        }
    }
}

}  // namespace fare
