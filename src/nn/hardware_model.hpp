// Abstraction of the (possibly faulty) ReRAM hardware as seen by the
// training loop.
//
// The trainer asks the hardware model three questions every batch:
//   1. what effective weights do the weight crossbars return for the
//      logical weights just written (corruption + optional clipping)?
//   2. what effective adjacency bits do the adjacency crossbars return for
//      the batch's subgraph after the scheme's mapping decision?
//   3. what happens at an epoch boundary (BIST rescan, wear-driven
//      post-deployment faults, re-permutation)?
//
// The default implementation is ideal hardware (identity). FARe and the
// baseline schemes implement this interface in src/fare/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/bitmatrix.hpp"
#include "numeric/matrix.hpp"

namespace fare {

class HardwareModel {
public:
    virtual ~HardwareModel() = default;

    /// Called once before training with the model's logical parameters, in
    /// flattened index order. Lets the hardware allocate crossbar regions.
    virtual void bind_params(const std::vector<Matrix*>& params) { (void)params; }

    /// Called once before training with the ideal adjacency bits of every
    /// batch, in batch order. This is the paper's preprocessing phase: FARe
    /// computes the fault-aware mapping Pi here.
    virtual void preprocess(const std::vector<BitMatrix>& batch_adjacency) {
        (void)batch_adjacency;
    }

    /// Optional partition hint, called (before preprocess) with each batch's
    /// local-node -> source-partition ids in batch order. Lets a mapper give
    /// adjacency row-blocks a home tile that follows the graph cut
    /// (partition-aware placement + off-tile traffic accounting). Default:
    /// ignored — ideal hardware has no tiles.
    virtual void set_batch_partitions(
        const std::vector<std::vector<int>>& batch_node_parts) {
        (void)batch_node_parts;
    }

    /// Effective weights the crossbars return after the logical `w` is
    /// written to parameter region `idx`. Default: ideal hardware.
    virtual Matrix effective_weights(std::size_t idx, const Matrix& w) {
        (void)idx;
        return w;
    }

    /// Effective adjacency bits for batch `batch_idx` whose ideal bits are
    /// `ideal`. Default: ideal hardware.
    virtual BitMatrix effective_adjacency(std::size_t batch_idx,
                                          const BitMatrix& ideal) {
        (void)batch_idx;
        return ideal;
    }

    /// Mini-batch boundary hook: called after every optimizer step with the
    /// 0-based epoch, the 0-based index of the step within the epoch, and
    /// the nominal number of steps per epoch. This is where write-endurance
    /// accounting and *mid-epoch* fault arrival live (faults need not wait
    /// for the epoch boundary — arXiv:2412.03089); implementations that
    /// change fault state here must bump their version stamps so the
    /// trainer's effective-state caches invalidate exactly then.
    virtual void on_step_end(std::size_t epoch, std::size_t step,
                             std::size_t steps_per_epoch) {
        (void)epoch;
        (void)step;
        (void)steps_per_epoch;
    }

    /// Epoch boundary hook (0-based epoch that just finished).
    virtual void on_epoch_end(std::size_t epoch) { (void)epoch; }

    // ---- Effective-state versioning -------------------------------------
    //
    // effective_weights / effective_adjacency are pure functions of
    // (logical input, hardware fault state). The fault state only changes at
    // discrete events — bind, preprocess, epoch-end wear + BIST rescan,
    // re-permutation — so the trainer caches derived state (effective
    // weights, batch graph views) keyed on these stamps and skips recompute
    // while they are unchanged.
    //
    // Caching is OPT-IN: the default returns a fresh stamp per query, which
    // keeps the per-batch recompute behaviour for any subclass that doesn't
    // think about versioning (fail safe, never stale). Deterministic
    // implementations override these to return a stamp they bump on every
    // event that could alter the corresponding answer; non-deterministic
    // read-out (e.g. read noise) must keep returning fresh stamps.

    /// Version of the fault/mapping state behind effective_weights().
    virtual std::uint64_t weights_state_version() const { return next_fresh_stamp(); }

    /// Version of the fault/mapping state behind effective_adjacency().
    virtual std::uint64_t adjacency_state_version() const { return next_fresh_stamp(); }

protected:
    /// A stamp that never repeats: returning it from a version query marks
    /// the answer as uncacheable.
    std::uint64_t next_fresh_stamp() const { return fresh_stamp_++; }

private:
    /// Starts high so an overriding subclass's event-counted versions (small
    /// integers) can never collide with a fresh stamp.
    mutable std::uint64_t fresh_stamp_ = 1ull << 32;
};

}  // namespace fare
