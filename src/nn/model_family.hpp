// Model-family registry: the seam that makes the sweep/cell machinery
// model-agnostic. A family owns a set of workloads (registered beside the
// graph datasets), knows how to build their training configuration, and can
// train or deploy any of them on the simulated crossbar fabric under a fault
// scenario. Families are registry-named like schemes and partitioners:
// "gnn" (the paper's Cluster-GCN stack) and "transformer" (token-embedding +
// self-attention + MLP blocks on the same HardwareModel seam).
//
// Everything here is forward-declared so nn/ stays free of sim/ and fare/
// includes; implementations live under src/models/.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace fare {

struct WorkloadSpec;
struct TrainConfig;
struct FaultScenario;
struct HardwareOverrides;
struct SchemeRunResult;
struct DeploymentResult;
struct WorkloadTiming;
enum class Scheme;

class ModelFamily {
public:
    virtual ~ModelFamily() = default;

    /// Registry name, e.g. "gnn" or "transformer". Appears in CellSpec memo
    /// keys as `|model=<name>` for every family except "gnn" (key-inert at
    /// the default so legacy keys and disk caches stay byte-stable).
    virtual std::string name() const = 0;

    /// The workloads this family registers (each WorkloadSpec carries
    /// `family == name()`).
    virtual std::vector<WorkloadSpec> workloads() const = 0;

    /// Training configuration for one of this family's workloads.
    virtual TrainConfig train_config(const WorkloadSpec& workload,
                                     std::uint64_t seed) const = 0;

    /// Timing-model description at paper scale (Fig. 7 plumbing).
    virtual WorkloadTiming paper_scale_timing(const WorkloadSpec& workload) const = 0;

    /// Train `workload` from scratch under `scheme` on the (possibly faulty)
    /// simulated hardware and report the scheme-level diagnostics.
    virtual SchemeRunResult run_train(const WorkloadSpec& workload, Scheme scheme,
                                      const TrainConfig& train_config,
                                      const FaultScenario& scenario,
                                      const HardwareOverrides& hw_overrides,
                                      std::uint64_t hw_seed) const = 0;

    /// Train on ideal hardware, then deploy the weights onto the faulty chip
    /// under `scheme` and evaluate there (CellMode::kDeploy).
    virtual DeploymentResult run_deploy(const WorkloadSpec& workload, Scheme scheme,
                                        const TrainConfig& train_config,
                                        const FaultScenario& scenario,
                                        const HardwareOverrides& hw_overrides,
                                        std::uint64_t hw_seed) const = 0;
};

/// All registered families, in registration order ("gnn" first).
const std::vector<const ModelFamily*>& registered_model_families();

/// Look up a family by registry name. Throws on miss; CLI-facing code should
/// prefer try_find_model_family.
const ModelFamily& find_model_family(const std::string& name);

/// Structured-error lookup: a miss returns an Expected whose message lists
/// the registered family names.
Expected<const ModelFamily*> try_find_model_family(const std::string& name);

/// One line per registered family, for usage messages.
std::string model_family_usage();

}  // namespace fare
